// Frontend golden tests: MPS/LP corpus round-trips, RANGES / BOUNDS /
// integer-marker semantics, typed rejection of every malformed corpus
// file, hard caps (ReaderLimits), and write_mps(read_model(.)) closure.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "ilp/solver.hpp"
#include "lp/instance_gen.hpp"
#include "lp/model.hpp"
#include "lp/mps_reader.hpp"
#include "lp/sanitizer.hpp"

namespace advbist::lp {
namespace {

const std::string kCorpus = ADVBIST_SOURCE_DIR "/tests/lp/corpus";

int find_var(const Model& m, const std::string& name) {
  for (int v = 0; v < m.num_variables(); ++v)
    if (m.variable(v).name == name) return v;
  return -1;
}

int find_row(const Model& m, const std::string& name) {
  for (int r = 0; r < m.num_constraints(); ++r)
    if (m.constraint(r).name == name) return r;
  return -1;
}

std::vector<Term> sorted_terms(std::vector<Term> t) {
  std::sort(t.begin(), t.end(),
            [](const Term& a, const Term& b) { return a.var < b.var; });
  return t;
}

// Structural equality up to term order and names: exactly what the
// write_mps doc promises for the round trip.
void expect_models_equal(const Model& a, const Model& b) {
  ASSERT_EQ(a.num_variables(), b.num_variables());
  ASSERT_EQ(a.num_constraints(), b.num_constraints());
  for (int v = 0; v < a.num_variables(); ++v) {
    const VariableDef& x = a.variable(v);
    const VariableDef& y = b.variable(v);
    EXPECT_EQ(x.lower, y.lower) << "var " << v;
    EXPECT_EQ(x.upper, y.upper) << "var " << v;
    EXPECT_EQ(x.objective, y.objective) << "var " << v;
    EXPECT_EQ(x.type, y.type) << "var " << v;
  }
  for (int r = 0; r < a.num_constraints(); ++r) {
    const ConstraintDef& x = a.constraint(r);
    const ConstraintDef& y = b.constraint(r);
    EXPECT_EQ(x.sense, y.sense) << "row " << r;
    EXPECT_EQ(x.rhs, y.rhs) << "row " << r;
    const std::vector<Term> xt = sorted_terms(x.terms);
    const std::vector<Term> yt = sorted_terms(y.terms);
    ASSERT_EQ(xt.size(), yt.size()) << "row " << r;
    for (std::size_t i = 0; i < xt.size(); ++i) {
      EXPECT_EQ(xt[i].var, yt[i].var) << "row " << r;
      EXPECT_EQ(xt[i].coeff, yt[i].coeff) << "row " << r;
    }
  }
}

TEST(MpsReader, MiplibFragmentGolden) {
  const ReadResult rr = read_model_file(kCorpus + "/valid/miplib_frag.mps");
  ASSERT_TRUE(rr.ok) << rr.error.to_string();
  EXPECT_EQ(rr.format, "mps");
  EXPECT_EQ(rr.name, "MIPFRAG");
  EXPECT_FALSE(rr.maximize);
  // RHS entry on the objective row is the NEGATED constant term.
  EXPECT_DOUBLE_EQ(rr.objective_offset, 5.0);
  EXPECT_EQ(rr.num_ranges, 2);
  EXPECT_EQ(rr.crossed_bounds, 0);

  const Model& m = rr.model;
  ASSERT_EQ(m.num_variables(), 4);
  // C1+C1_rng, C2+C2_rng, C3, C4 — the free row FREEROW contributes nothing.
  ASSERT_EQ(m.num_constraints(), 6);

  const int x1 = find_var(m, "X1"), x2 = find_var(m, "X2");
  const int x3 = find_var(m, "X3"), x4 = find_var(m, "X4");
  ASSERT_GE(x1, 0);
  ASSERT_GE(x2, 0);
  ASSERT_GE(x3, 0);
  ASSERT_GE(x4, 0);

  // X1: continuous, UP 9 + LO 1, objective 1.
  EXPECT_EQ(m.variable(x1).type, VarType::kContinuous);
  EXPECT_DOUBLE_EQ(m.variable(x1).lower, 1.0);
  EXPECT_DOUBLE_EQ(m.variable(x1).upper, 9.0);
  EXPECT_DOUBLE_EQ(m.variable(x1).objective, 1.0);
  // X2: INTORG marker + BV.
  EXPECT_EQ(m.variable(x2).type, VarType::kInteger);
  EXPECT_DOUBLE_EQ(m.variable(x2).lower, 0.0);
  EXPECT_DOUBLE_EQ(m.variable(x2).upper, 1.0);
  EXPECT_DOUBLE_EQ(m.variable(x2).objective, -2.0);
  // X3: INTORG marker + UI 7.
  EXPECT_EQ(m.variable(x3).type, VarType::kInteger);
  EXPECT_DOUBLE_EQ(m.variable(x3).lower, 0.0);
  EXPECT_DOUBLE_EQ(m.variable(x3).upper, 7.0);
  // X4: after INTEND, MI then UP 2 -> continuous [-inf, 2].
  EXPECT_EQ(m.variable(x4).type, VarType::kContinuous);
  EXPECT_EQ(m.variable(x4).lower, -kInfinity);
  EXPECT_DOUBLE_EQ(m.variable(x4).upper, 2.0);

  // RANGES: L row C1 (rhs 10, range 4) -> activity in [6, 10].
  const int c1 = find_row(m, "C1"), c1r = find_row(m, "C1_rng");
  ASSERT_GE(c1, 0);
  ASSERT_GE(c1r, 0);
  EXPECT_EQ(m.constraint(c1).sense, Sense::kGreaterEqual);
  EXPECT_DOUBLE_EQ(m.constraint(c1).rhs, 6.0);
  EXPECT_EQ(m.constraint(c1r).sense, Sense::kLessEqual);
  EXPECT_DOUBLE_EQ(m.constraint(c1r).rhs, 10.0);
  // Both halves carry the same activity: 2 X1 + 1 X2.
  for (const int r : {c1, c1r}) {
    const std::vector<Term> t = sorted_terms(m.constraint(r).terms);
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t[0].var, std::min(x1, x2));
    EXPECT_EQ(t[1].var, std::max(x1, x2));
  }
  // G row C2 (rhs 2, range 6) -> [2, 8].
  const int c2 = find_row(m, "C2"), c2r = find_row(m, "C2_rng");
  ASSERT_GE(c2, 0);
  ASSERT_GE(c2r, 0);
  EXPECT_EQ(m.constraint(c2).sense, Sense::kGreaterEqual);
  EXPECT_DOUBLE_EQ(m.constraint(c2).rhs, 2.0);
  EXPECT_EQ(m.constraint(c2r).sense, Sense::kLessEqual);
  EXPECT_DOUBLE_EQ(m.constraint(c2r).rhs, 8.0);

  EXPECT_EQ(m.constraint(find_row(m, "C3")).sense, Sense::kEqual);
  EXPECT_EQ(m.constraint(find_row(m, "C4")).sense, Sense::kLessEqual);

  // A hostile file cannot smuggle anything past the gate: golden corpus
  // sanitizes clean with a zero fingerprint.
  const SanitizeResult san = sanitize_model(m);
  EXPECT_EQ(san.diag.cls, ModelClass::kClean);
  EXPECT_FALSE(san.diag.proven_infeasible);
  EXPECT_EQ(san.diag.fingerprint(), 0u);
}

TEST(MpsReader, KnapsackLpGoldenAndSolve) {
  const ReadResult rr = read_model_file(kCorpus + "/valid/knapsack.lp");
  ASSERT_TRUE(rr.ok) << rr.error.to_string();
  EXPECT_EQ(rr.format, "lp");
  EXPECT_TRUE(rr.maximize);
  EXPECT_DOUBLE_EQ(rr.objective_offset, 0.0);

  const Model& m = rr.model;
  ASSERT_EQ(m.num_variables(), 4);
  ASSERT_EQ(m.num_constraints(), 3);
  const int x1 = find_var(m, "x1"), x4 = find_var(m, "x4");
  ASSERT_GE(x1, 0);
  ASSERT_GE(x4, 0);
  // maximize 5 x1 ... is stored negated: all solvers minimize.
  EXPECT_DOUBLE_EQ(m.variable(x1).objective, -5.0);
  EXPECT_DOUBLE_EQ(m.variable(x4).objective, 0.5);
  EXPECT_EQ(m.variable(x1).type, VarType::kInteger);
  EXPECT_DOUBLE_EQ(m.variable(x1).upper, 1.0);
  EXPECT_EQ(m.variable(x4).type, VarType::kContinuous);
  EXPECT_DOUBLE_EQ(m.variable(x4).upper, 2.0);
  EXPECT_EQ(m.constraint(find_row(m, "cap")).sense, Sense::kLessEqual);
  EXPECT_EQ(m.constraint(find_row(m, "link")).sense, Sense::kGreaterEqual);
  EXPECT_EQ(m.constraint(find_row(m, "fix")).sense, Sense::kEqual);

  // End to end through the solver: optimum is x1=x2=x3=1, x4=0, value 12
  // in the user's (maximize) frame.
  const ilp::Solution s = ilp::Solver().solve(m);
  ASSERT_TRUE(s.is_optimal());
  const double user = (rr.maximize ? -s.objective : s.objective) +
                      rr.objective_offset;
  EXPECT_NEAR(user, 12.0, 1e-6);
}

TEST(MpsReader, MalformedCorpusAllRejectedWithTypedErrors) {
  int seen = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(kCorpus + "/malformed")) {
    const std::string path = entry.path().string();
    const ReadResult rr = read_model_file(path);
    EXPECT_FALSE(rr.ok) << path << " parsed unexpectedly";
    EXPECT_FALSE(rr.error.message.empty()) << path;
    EXPECT_GE(rr.error.line, 0) << path;
    // to_string embeds the position for the CLI / reason.json.
    EXPECT_NE(rr.error.to_string().find("parse error"), std::string::npos)
        << path;
    ++seen;
  }
  // The corpus is part of the contract; shrinking it silently would gut
  // the fuzz seeds too.
  EXPECT_GE(seen, 16);
}

TEST(MpsReader, ValidCorpusAllParse) {
  int seen = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(kCorpus + "/valid")) {
    const std::string path = entry.path().string();
    const ReadResult rr = read_model_file(path);
    EXPECT_TRUE(rr.ok) << path << ": " << rr.error.to_string();
    ++seen;
  }
  EXPECT_GE(seen, 2);
}

TEST(MpsReader, MissingFileIsParseErrorNotCrash) {
  const ReadResult rr = read_model_file("/nonexistent/advbist-no-such.mps");
  EXPECT_FALSE(rr.ok);
  EXPECT_EQ(rr.error.line, 0);
  EXPECT_FALSE(rr.error.message.empty());
}

TEST(MpsReader, FormatSniffWithoutExtension) {
  const std::string lp = "minimize\n obj: x + y\nsubject to\n"
                         " c: x + y >= 1\nend\n";
  EXPECT_EQ(read_model(lp).format, "lp");
  const std::string mps =
      "NAME T\nROWS\n N obj\n G c\nCOLUMNS\n x obj 1.0 c 1.0\n"
      " y obj 1.0 c 1.0\nRHS\n r c 1.0\nENDATA\n";
  const ReadResult rr = read_model(mps);
  ASSERT_TRUE(rr.ok) << rr.error.to_string();
  EXPECT_EQ(rr.format, "mps");
  EXPECT_EQ(rr.model.num_variables(), 2);
}

TEST(MpsReader, CrossedBoundsEncodedForSanitizer) {
  // Hostile BOUNDS: LO 5 then UP 2. The hardened Model cannot hold
  // lower > upper, so the reader swaps the bounds and plants a
  // contradictory empty row; the sanitizer proves infeasibility, and the
  // full solver reports it honestly.
  const std::string mps =
      "NAME CROSSED\nROWS\n N obj\n L c\nCOLUMNS\n x obj 1.0 c 1.0\n"
      "RHS\n r c 4.0\nBOUNDS\n LO B x 5.0\n UP B x 2.0\nENDATA\n";
  const ReadResult rr = read_model(mps);
  ASSERT_TRUE(rr.ok) << rr.error.to_string();
  EXPECT_EQ(rr.crossed_bounds, 1);
  const int cr = find_row(rr.model, "crossed_bounds(x)");
  ASSERT_GE(cr, 0);
  EXPECT_TRUE(rr.model.constraint(cr).terms.empty());
  EXPECT_LE(rr.model.variable(find_var(rr.model, "x")).lower,
            rr.model.variable(find_var(rr.model, "x")).upper);

  const SanitizeResult san = sanitize_model(rr.model);
  EXPECT_TRUE(san.diag.proven_infeasible);
  EXPECT_GE(san.diag.contradictory_rows, 1);

  const ilp::Solution s = ilp::Solver().solve(rr.model);
  EXPECT_EQ(s.status, ilp::SolveStatus::kInfeasible);
  EXPECT_TRUE(s.stats.sanitizer_proven_infeasible);
}

TEST(MpsReader, ObjsenseMaximizeNegatesObjective) {
  const std::string mps =
      "NAME MAX\nOBJSENSE\n MAX\nROWS\n N obj\n L c\nCOLUMNS\n"
      " x obj 3.0 c 1.0\nRHS\n r c 1.0\nENDATA\n";
  const ReadResult rr = read_model(mps);
  ASSERT_TRUE(rr.ok) << rr.error.to_string();
  EXPECT_TRUE(rr.maximize);
  EXPECT_DOUBLE_EQ(rr.model.variable(0).objective, -3.0);
}

TEST(MpsReader, LimitsRowCap) {
  ReaderLimits lim;
  lim.max_rows = 2;
  const std::string mps =
      "NAME CAP\nROWS\n N obj\n L a\n L b\n L c\nCOLUMNS\n x obj 1.0\n"
      "ENDATA\n";
  const ReadResult rr = read_model(mps, lim);
  EXPECT_FALSE(rr.ok);
  EXPECT_GT(rr.error.line, 0);
}

TEST(MpsReader, LimitsColumnCap) {
  ReaderLimits lim;
  lim.max_cols = 1;
  const std::string mps =
      "NAME CAP\nROWS\n N obj\n L c\nCOLUMNS\n x obj 1.0\n y obj 1.0\n"
      "RHS\n r c 1.0\nENDATA\n";
  EXPECT_FALSE(read_model(mps, lim).ok);
}

TEST(MpsReader, LimitsNnzCap) {
  ReaderLimits lim;
  lim.max_nnz = 2;
  const std::string mps =
      "NAME CAP\nROWS\n N obj\n L c\n L d\nCOLUMNS\n"
      " x obj 1.0 c 1.0\n x d 1.0\n y c 1.0 d 1.0\nRHS\n r c 1.0\nENDATA\n";
  EXPECT_FALSE(read_model(mps, lim).ok);
}

TEST(MpsReader, LimitsByteAndLineAndNameCaps) {
  ReaderLimits bytes;
  bytes.max_bytes = 16;
  EXPECT_FALSE(read_model(std::string(64, 'A'), bytes).ok);

  ReaderLimits line;
  line.max_line_len = 8;
  EXPECT_FALSE(
      read_model("NAME LONGLINE_PAST_THE_CAP\nROWS\nENDATA\n", line).ok);

  ReaderLimits name;
  name.max_name_len = 4;
  EXPECT_FALSE(
      read_model("NAME N\nROWS\n N obj\n L longrowname\nCOLUMNS\nENDATA\n",
                 name)
          .ok);
}

TEST(MpsReader, RoundTripGeneratedInstances) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    for (const bool illcond : {false, true}) {
      GenOptions opt;
      opt.seed = seed;
      opt.num_vars = 12;
      opt.num_rows = 18;
      opt.badly_scaled = illcond;
      const Model m = generate_instance(opt);
      const ReadResult rr = read_model(write_mps(m, instance_name(opt)));
      ASSERT_TRUE(rr.ok) << instance_name(opt) << ": "
                         << rr.error.to_string();
      EXPECT_EQ(rr.name, instance_name(opt));
      expect_models_equal(m, rr.model);
    }
  }
}

TEST(MpsReader, RoundTripCorpusModels) {
  // write_mps(read(.)) must itself re-read to the same model — including
  // ranges-expanded rows, MI bounds and integer markers.
  for (const char* file : {"/valid/miplib_frag.mps", "/valid/knapsack.lp"}) {
    const ReadResult a = read_model_file(kCorpus + file);
    ASSERT_TRUE(a.ok) << file;
    const ReadResult b = read_model(write_mps(a.model, "RT"));
    ASSERT_TRUE(b.ok) << file << ": " << b.error.to_string();
    expect_models_equal(a.model, b.model);
  }
}

}  // namespace
}  // namespace advbist::lp
