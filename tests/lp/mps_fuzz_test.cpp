// Seeded mutation fuzzer over the untrusted-input frontend. Contract
// (the reader header's "defensive contract"): for ANY byte stream,
// read_model either returns a model the sanitizer can classify, or a
// typed ParseError — never a crash, never UB (the CI fuzz-smoke job runs
// this suite under ASan/UBSan). Seeds are fixed, so a failure names a
// reproducible (base, iteration) pair.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lp/instance_gen.hpp"
#include "lp/mps_reader.hpp"
#include "lp/sanitizer.hpp"
#include "util/rng.hpp"

namespace advbist::lp {
namespace {

const std::string kCorpus = ADVBIST_SOURCE_DIR "/tests/lp/corpus";

int fuzz_iters() {
  // CI's fuzz-smoke job raises this; the default keeps the suite fast in
  // a plain developer ctest run.
  if (const char* env = std::getenv("ADVBIST_FUZZ_ITERS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 150;
}

std::vector<std::string> corpus_texts() {
  std::vector<std::string> out;
  for (const char* sub : {"/valid", "/malformed"}) {
    for (const auto& entry :
         std::filesystem::directory_iterator(kCorpus + sub)) {
      std::ifstream in(entry.path(), std::ios::binary);
      std::ostringstream ss;
      ss << in.rdbuf();
      out.push_back(ss.str());
    }
  }
  // Generated instances exercise the writer's own output as a fuzz seed.
  for (const std::uint64_t seed : {7ull, 8ull}) {
    GenOptions opt;
    opt.seed = seed;
    opt.num_vars = 10;
    opt.num_rows = 14;
    opt.badly_scaled = seed == 8ull;
    out.push_back(write_mps(generate_instance(opt), instance_name(opt)));
  }
  return out;
}

// One mutation step: byte flips, truncation, insertion, slice
// duplication, or a token swap. Mutants intentionally include NULs,
// control characters and high bytes.
std::string mutate(const std::string& base, util::Rng& rng) {
  std::string t = base;
  const int rounds = 1 + static_cast<int>(rng.next_u64() % 4);
  for (int i = 0; i < rounds && !t.empty(); ++i) {
    switch (rng.next_u64() % 5) {
      case 0: {  // flip a byte to anything, including NUL / 0xFF
        t[rng.next_u64() % t.size()] =
            static_cast<char>(rng.next_u64() & 0xff);
        break;
      }
      case 1: {  // truncate
        t.resize(rng.next_u64() % (t.size() + 1));
        break;
      }
      case 2: {  // insert a random byte
        t.insert(t.begin() + static_cast<long>(rng.next_u64() % (t.size() + 1)),
                 static_cast<char>(rng.next_u64() & 0xff));
        break;
      }
      case 3: {  // duplicate a slice (blows up sections / repeats rows)
        const std::size_t a = rng.next_u64() % t.size();
        const std::size_t len =
            std::min<std::size_t>(t.size() - a, 1 + rng.next_u64() % 64);
        const std::string slice = t.substr(a, len);
        t.insert(rng.next_u64() % (t.size() + 1), slice);
        break;
      }
      default: {  // swap two whitespace-delimited tokens
        std::vector<std::pair<std::size_t, std::size_t>> toks;
        std::size_t p = 0;
        while (p < t.size()) {
          while (p < t.size() && std::isspace(static_cast<unsigned char>(t[p])))
            ++p;
          const std::size_t start = p;
          while (p < t.size() &&
                 !std::isspace(static_cast<unsigned char>(t[p])))
            ++p;
          if (p > start) toks.emplace_back(start, p - start);
        }
        if (toks.size() >= 2) {
          const auto a = toks[rng.next_u64() % toks.size()];
          const auto b = toks[rng.next_u64() % toks.size()];
          const std::string sa = t.substr(a.first, a.second);
          const std::string sb = t.substr(b.first, b.second);
          // Replace the later token first so offsets stay valid.
          if (a.first > b.first) {
            t.replace(a.first, a.second, sb);
            t.replace(b.first, b.second, sa);
          } else if (b.first > a.first) {
            t.replace(b.first, b.second, sa);
            t.replace(a.first, a.second, sb);
          }
        }
        break;
      }
    }
  }
  return t;
}

// The whole contract in one place: parse, and if a model comes out, it
// must survive the sanitizer gate without crashing.
void expect_handled(const std::string& text, const std::string& what) {
  // Small caps so hostile mutants cannot make the fuzz run allocate or
  // loop excessively; cap violations are typed errors like any other.
  ReaderLimits lim;
  lim.max_rows = 4096;
  lim.max_cols = 4096;
  lim.max_nnz = 65536;
  lim.max_bytes = 1u << 20;
  const ReadResult rr = read_model(text, lim);
  if (!rr.ok) {
    EXPECT_GE(rr.error.line, 0) << what;
    EXPECT_FALSE(rr.error.message.empty()) << what;
    return;
  }
  const SanitizeResult san = sanitize_model(rr.model);
  if (san.diag.cls != ModelClass::kRejected) {
    // The repaired model must satisfy the hardened-Model invariants: a
    // rebuild through the validating API is the cheapest full check.
    EXPECT_EQ(san.model.num_variables(), rr.model.num_variables()) << what;
  }
}

TEST(MpsFuzz, MutatedCorpusNeverCrashes) {
  const std::vector<std::string> bases = corpus_texts();
  ASSERT_GE(bases.size(), 18u);
  const int iters = fuzz_iters();
  for (std::size_t b = 0; b < bases.size(); ++b) {
    util::Rng rng(0x5eed0000 + static_cast<std::uint64_t>(b));
    for (int i = 0; i < iters; ++i) {
      const std::string mutant = mutate(bases[b], rng);
      expect_handled(mutant,
                     "base " + std::to_string(b) + " iter " +
                         std::to_string(i));
    }
  }
}

TEST(MpsFuzz, EveryPrefixOfGoldenFilesHandled) {
  // Truncation at every byte boundary: the classic parser-crash family.
  for (const char* file : {"/valid/miplib_frag.mps", "/valid/knapsack.lp"}) {
    std::ifstream in(kCorpus + file, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    ASSERT_FALSE(text.empty());
    for (std::size_t len = 0; len <= text.size(); ++len)
      expect_handled(text.substr(0, len),
                     std::string(file) + " prefix " + std::to_string(len));
  }
}

TEST(MpsFuzz, RandomByteSoupHandled) {
  util::Rng rng(0xb17e5);
  for (int i = 0; i < 200; ++i) {
    std::string soup(rng.next_u64() % 512, '\0');
    for (char& c : soup) c = static_cast<char>(rng.next_u64() & 0xff);
    expect_handled(soup, "soup " + std::to_string(i));
  }
}

TEST(MpsFuzz, SurvivingMutantsAreSolvable) {
  // Mutants that still parse AND sanitize clean/repaired must be safe to
  // hand to presolve/simplex — pin that with a tiny time budget.
  GenOptions opt;
  opt.seed = 42;
  opt.num_vars = 8;
  opt.num_rows = 10;
  const std::string base = write_mps(generate_instance(opt), "FZ");
  util::Rng rng(0xf00d);
  int solved = 0;
  for (int i = 0; i < 60; ++i) {
    const ReadResult rr = read_model(mutate(base, rng));
    if (!rr.ok) continue;
    const SanitizeResult san = sanitize_model(rr.model);
    if (san.diag.cls == ModelClass::kRejected) continue;
    ++solved;
  }
  // The mutation rate is gentle enough that some mutants survive; if none
  // do, the fuzzer is only testing the error path.
  EXPECT_GT(solved, 0);
}

}  // namespace
}  // namespace advbist::lp
