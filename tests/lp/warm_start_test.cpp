// Warm-start correctness: after any sequence of set_variable_bounds calls
// the warm-started solve must agree (status and objective) with a cold
// solve of the same model. Covers the regression where a nonbasic variable
// whose bound became infinite kept a stale vstat and was priced against
// the wrong bound.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "util/rng.hpp"

namespace advbist::lp {
namespace {

constexpr double kTol = 1e-6;

/// Cold reference: a fresh solver over `model` with `bounds` applied.
LpResult cold_solve(const Model& model,
                    const std::vector<std::pair<double, double>>& bounds) {
  SimplexSolver solver(model);
  for (int v = 0; v < model.num_variables(); ++v)
    solver.set_variable_bounds(v, bounds[v].first, bounds[v].second);
  solver.invalidate_basis();
  return solver.solve();
}

TEST(WarmStart, RelaxUpperBoundToInfinityRepricesVariable) {
  // min -x  s.t.  x + y <= 10,  y in [0,1],  x in [0,5].
  // Optimal: x = 5 (nonbasic at its upper bound).
  Model m;
  const int x = m.add_variable(0, 5, -1, VarType::kContinuous, "x");
  const int y = m.add_variable(0, 1, 0, VarType::kContinuous, "y");
  m.add_constraint(LinExpr().add(x, 1).add(y, 1), Sense::kLessEqual, 10);

  SimplexSolver solver(m);
  LpResult first = solver.solve();
  ASSERT_EQ(first.status, LpStatus::kOptimal);
  EXPECT_NEAR(first.objective, -5.0, kTol);
  EXPECT_NEAR(first.x[x], 5.0, kTol);

  // Relax x's upper bound to +inf: the variable was sitting at that bound,
  // so the solver must migrate it to the lower bound *and* reprice it as
  // at-lower, otherwise the warm solve stops at x = 0.
  solver.set_variable_bounds(x, 0, kInfinity);
  LpResult relaxed = solver.solve();
  ASSERT_EQ(relaxed.status, LpStatus::kOptimal);
  EXPECT_NEAR(relaxed.objective, -10.0, kTol);
  EXPECT_NEAR(relaxed.x[x], 10.0, kTol);
}

TEST(WarmStart, RelaxLowerBoundToInfinityKeepsValueFinite) {
  // min x  s.t.  x - y >= -10,  y in [0,1],  x in [-5, 5].
  // Optimal: x = -5 at its lower bound. Relaxing the lower bound to -inf
  // must not leave the nonbasic value at -inf.
  Model m;
  const int x = m.add_variable(-5, 5, 1, VarType::kContinuous, "x");
  const int y = m.add_variable(0, 1, 0, VarType::kContinuous, "y");
  m.add_constraint(LinExpr().add(x, 1).add(y, -1), Sense::kGreaterEqual, -10);

  SimplexSolver solver(m);
  LpResult first = solver.solve();
  ASSERT_EQ(first.status, LpStatus::kOptimal);
  EXPECT_NEAR(first.objective, -5.0, kTol);

  solver.set_variable_bounds(x, -kInfinity, 5);
  LpResult relaxed = solver.solve();
  ASSERT_EQ(relaxed.status, LpStatus::kOptimal);
  EXPECT_NEAR(relaxed.objective, -10.0, kTol);
  EXPECT_TRUE(std::isfinite(relaxed.x[x]));
}

TEST(WarmStart, TightenThenRelaxSequenceMatchesColdSolves) {
  // Branch & bound's access pattern: repeatedly fix binaries to 0/1 and
  // un-fix them again, warm-starting every re-solve.
  Model m;
  const int n = 6;
  for (int v = 0; v < n; ++v)
    m.add_variable(0, 1, (v % 2 == 0) ? -3.0 - v : 2.0 - v,
                   VarType::kContinuous, "");
  m.add_constraint(
      LinExpr().add(0, 1).add(1, 2).add(2, 1).add(3, 1).add(4, 2).add(5, 1),
      Sense::kLessEqual, 4);
  m.add_constraint(LinExpr().add(0, 1).add(2, -1).add(4, 1),
                   Sense::kGreaterEqual, 0);

  SimplexSolver warm(m);
  std::vector<std::pair<double, double>> bounds(n, {0.0, 1.0});
  ASSERT_EQ(warm.solve().status, LpStatus::kOptimal);

  const std::vector<std::vector<std::pair<int, std::pair<double, double>>>>
      steps = {
          {{0, {1.0, 1.0}}},                    // fix x0 = 1
          {{2, {0.0, 0.0}}, {4, {1.0, 1.0}}},   // fix x2 = 0, x4 = 1
          {{0, {0.0, 1.0}}},                    // un-fix x0
          {{4, {0.0, 0.0}}},                    // flip x4 to 0
          {{2, {0.0, 1.0}}, {4, {0.0, 1.0}}},   // relax everything back
      };
  for (const auto& step : steps) {
    for (const auto& [var, bds] : step) {
      bounds[var] = bds;
      warm.set_variable_bounds(var, bds.first, bds.second);
    }
    const LpResult w = warm.solve();
    const LpResult c = cold_solve(m, bounds);
    ASSERT_EQ(w.status, c.status);
    if (w.status == LpStatus::kOptimal)
      EXPECT_NEAR(w.objective, c.objective, kTol);
  }
}

TEST(WarmStart, RandomizedBoundSequencesMatchColdSolves) {
  util::Rng rng(20260726ULL);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = rng.next_int(3, 8);
    const int rows = rng.next_int(2, 6);
    Model m;
    for (int v = 0; v < n; ++v)
      m.add_variable(0, rng.next_int(1, 3), rng.next_int(-5, 5),
                     VarType::kContinuous, "");
    for (int r = 0; r < rows; ++r) {
      LinExpr e;
      for (int v = 0; v < n; ++v) {
        const int coeff = rng.next_int(-2, 3);
        if (coeff != 0) e.add(v, coeff);
      }
      m.add_constraint(std::move(e), Sense::kLessEqual, rng.next_int(2, 8));
    }

    SimplexSolver warm(m);
    std::vector<std::pair<double, double>> bounds(n);
    for (int v = 0; v < n; ++v)
      bounds[v] = {m.variable(v).lower, m.variable(v).upper};
    warm.solve();

    for (int step = 0; step < 8; ++step) {
      const int var = rng.next_int(0, n - 1);
      const double orig_ub = m.variable(var).upper;
      std::pair<double, double> next;
      switch (rng.next_int(0, 3)) {
        case 0: next = {0.0, 0.0}; break;               // fix at lower
        case 1: next = {orig_ub, orig_ub}; break;       // fix at upper
        case 2: next = {0.0, orig_ub}; break;           // relax to original
        default: next = {0.0, kInfinity}; break;        // open the top
      }
      bounds[var] = next;
      warm.set_variable_bounds(var, next.first, next.second);

      const LpResult w = warm.solve();
      const LpResult c = cold_solve(m, bounds);
      ASSERT_EQ(w.status, c.status)
          << "trial " << trial << " step " << step;
      if (w.status == LpStatus::kOptimal)
        ASSERT_NEAR(w.objective, c.objective, 1e-5)
            << "trial " << trial << " step " << step;
    }
  }
}

}  // namespace
}  // namespace advbist::lp
