// Serve-engine hardening tests: bounded admission, retry-with-resume,
// result caching, drain-and-restart, and fault-injected queue shedding.
//
// Everything runs against a real spool directory under the test temp dir
// and real solves of the small paper instances, because the contract under
// test is end-to-end: no job is ever lost (completed, failed, or still
// pending on disk), retries make monotone progress via checkpoints, and a
// drained serve can be restarted to finish exactly what was left.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include "core/serve.hpp"
#include "util/fault_injector.hpp"

namespace advbist::core {
namespace {

namespace fs = std::filesystem;

class ScopedInjector {
 public:
  explicit ScopedInjector(util::FaultInjector* fi) {
    util::FaultInjector::install(fi);
  }
  ~ScopedInjector() { util::FaultInjector::install(nullptr); }
};

/// Fresh spool dir per test.
std::string make_spool(const char* name) {
  const std::string dir = testing::TempDir() + "spool_" + name;
  fs::remove_all(dir);
  return dir;
}

ServeOptions base_options(const std::string& dir) {
  ServeOptions so;
  so.dir = dir;
  so.default_time_limit = 30.0;
  so.backoff.base_seconds = 0.01;  // tests should not sleep for real
  so.backoff.max_seconds = 0.05;
  return so;
}

TEST(Serve, SubmitParseRoundTrip) {
  const std::string dir = make_spool("roundtrip");
  JobSpec spec;
  spec.id = "my-job_1";
  spec.circuit = "fig1";
  spec.k = 2;
  spec.time_limit = 1.5;
  spec.threads = 2;
  spec.node_limit = 77;
  ASSERT_TRUE(submit_job(dir, spec));
  const auto back =
      parse_job_file(dir + "/jobs/my-job_1.job", "my-job_1");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->circuit, "fig1");
  EXPECT_EQ(back->k, 2);
  EXPECT_EQ(back->time_limit, 1.5);
  EXPECT_EQ(back->threads, 2);
  EXPECT_EQ(back->node_limit, 77);

  JobSpec bad = spec;
  bad.id = "evil/../path";
  EXPECT_FALSE(submit_job(dir, bad));
}

TEST(Serve, BatchCompletesVerifiedAndCachesOptima) {
  const std::string dir = make_spool("batch");
  for (int k = 1; k <= 2; ++k) {
    JobSpec spec;
    spec.id = "fig1-k" + std::to_string(k);
    spec.circuit = "fig1";
    spec.k = k;
    ASSERT_TRUE(submit_job(dir, spec));
  }
  const ServeStats st = serve(base_options(dir));
  EXPECT_EQ(st.jobs_completed, 2);
  EXPECT_EQ(st.jobs_failed, 0);
  ASSERT_EQ(st.outcomes.size(), 2u);
  for (const JobOutcome& o : st.outcomes) {
    EXPECT_EQ(o.status, "optimal");
    EXPECT_TRUE(o.verified);
    const auto file = read_result_file(dir + "/done/" + o.id + ".result");
    ASSERT_TRUE(file.has_value()) << o.id;
    EXPECT_EQ(file->status, "optimal");
    EXPECT_EQ(file->area, o.area);
  }
  // The spool drained: no pending jobs, no leftover checkpoints.
  EXPECT_TRUE(fs::is_empty(dir + "/jobs"));
  EXPECT_TRUE(fs::is_empty(dir + "/ckpt"));

  // Re-submitting the same model under a new id is answered from the cache
  // without a solve.
  JobSpec again;
  again.id = "fig1-k2-again";
  again.circuit = "fig1";
  again.k = 2;
  ASSERT_TRUE(submit_job(dir, again));
  const ServeStats st2 = serve(base_options(dir));
  EXPECT_EQ(st2.jobs_completed, 1);
  EXPECT_EQ(st2.cache_hits, 1);
  ASSERT_EQ(st2.outcomes.size(), 1u);
  EXPECT_TRUE(st2.outcomes[0].from_cache);
  EXPECT_EQ(st2.outcomes[0].attempts, 0);
  EXPECT_EQ(st2.outcomes[0].area, st.outcomes[1].area);
}

TEST(Serve, RetriesResumeFromCheckpointsUntilTheProofCompletes) {
  const std::string dir = make_spool("retry");
  JobSpec spec;
  spec.id = "tseng-k2";
  spec.circuit = "tseng";
  spec.k = 2;
  spec.node_limit = 60;  // far below the full proof: forces retries
  ASSERT_TRUE(submit_job(dir, spec));
  ServeOptions so = base_options(dir);
  so.max_retries = 100;
  const ServeStats st = serve(so);
  ASSERT_EQ(st.jobs_completed, 1);
  ASSERT_EQ(st.outcomes.size(), 1u);
  const JobOutcome& o = st.outcomes[0];
  EXPECT_EQ(o.status, "optimal");
  EXPECT_TRUE(o.verified);
  EXPECT_GT(o.attempts, 1);
  EXPECT_TRUE(o.resumed);
  EXPECT_GT(st.retries, 0);
  EXPECT_GT(st.checkpoints_written, 0);
  EXPECT_EQ(st.resume_rejected, 0);
}

TEST(Serve, DrainCheckpointsInFlightAndRestartFinishes) {
  const std::string dir = make_spool("drain");
  JobSpec spec;
  spec.id = "tseng-k2";
  spec.circuit = "tseng";
  spec.k = 2;
  ASSERT_TRUE(submit_job(dir, spec));

  std::atomic<bool> drain{false};
  ServeOptions so = base_options(dir);
  so.drain = &drain;
  std::thread trigger([&drain] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    drain.store(true);
  });
  const ServeStats st = serve(so);
  trigger.join();

  if (st.jobs_completed == 1) {
    // The solve beat the drain trigger on this machine — the interesting
    // path was not exercised, but nothing was lost either.
    EXPECT_TRUE(fs::is_empty(dir + "/jobs"));
    return;
  }
  // Drained mid-job: the job is still pending, its checkpoint exists.
  EXPECT_TRUE(st.drained);
  EXPECT_EQ(st.jobs_failed, 0);
  EXPECT_TRUE(fs::exists(dir + "/jobs/tseng-k2.job"));
  EXPECT_TRUE(fs::exists(dir + "/ckpt/tseng-k2.ck"));

  // A restarted serve resumes the checkpoint and finishes the proof.
  const ServeStats st2 = serve(base_options(dir));
  ASSERT_EQ(st2.jobs_completed, 1);
  EXPECT_EQ(st2.resumed_jobs, 1);
  ASSERT_EQ(st2.outcomes.size(), 1u);
  EXPECT_EQ(st2.outcomes[0].status, "optimal");
  EXPECT_TRUE(st2.outcomes[0].verified);
  EXPECT_TRUE(st2.outcomes[0].resumed);
  EXPECT_TRUE(fs::is_empty(dir + "/jobs"));
}

TEST(Serve, QueueFaultShedsJobsBackToDiskNeverLosesThem) {
  const std::string dir = make_spool("shed");
  for (int k = 1; k <= 2; ++k) {
    JobSpec spec;
    spec.id = "fig1-k" + std::to_string(k);
    spec.circuit = "fig1";
    spec.k = k;
    ASSERT_TRUE(submit_job(dir, spec));
  }
  {
    util::FaultInjector fi(9);
    fi.set_period(util::FaultSite::kQueueAlloc, 1);  // refuse every slot
    ScopedInjector guard(&fi);
    const ServeStats st = serve(base_options(dir));
    EXPECT_EQ(st.jobs_completed, 0);
    EXPECT_GT(st.jobs_shed, 0);
  }
  // Shed jobs stayed durable on disk; a healthy serve completes them all.
  EXPECT_TRUE(fs::exists(dir + "/jobs/fig1-k1.job"));
  EXPECT_TRUE(fs::exists(dir + "/jobs/fig1-k2.job"));
  const ServeStats st2 = serve(base_options(dir));
  EXPECT_EQ(st2.jobs_completed, 2);
  EXPECT_EQ(st2.jobs_failed, 0);
}

TEST(Serve, MalformedAndBadCircuitSpecsFailCleanly) {
  const std::string dir = make_spool("malformed");
  fs::create_directories(dir + "/jobs");
  {
    std::ofstream out(dir + "/jobs/garbage.job");
    out << "not a job file at all\n";
  }
  JobSpec bad;
  bad.id = "ghost";
  bad.circuit = "no-such-circuit";
  ASSERT_TRUE(submit_job(dir, bad));
  const ServeStats st = serve(base_options(dir));
  EXPECT_EQ(st.jobs_completed, 0);
  EXPECT_EQ(st.jobs_malformed, 1);
  EXPECT_EQ(st.jobs_failed, 1);  // the bad-circuit job
  EXPECT_TRUE(fs::exists(dir + "/failed/garbage.result"));
  EXPECT_TRUE(fs::exists(dir + "/failed/ghost.result"));
  EXPECT_TRUE(fs::is_empty(dir + "/jobs"));  // nothing left behind
}

TEST(Serve, ExhaustedRetriesMoveTheJobToFailedWithItsBestEffort) {
  const std::string dir = make_spool("failing");
  JobSpec spec;
  spec.id = "tseng-hopeless";
  spec.circuit = "tseng";
  spec.k = 2;
  spec.node_limit = 2;  // can never finish in one attempt
  ASSERT_TRUE(submit_job(dir, spec));
  ServeOptions so = base_options(dir);
  so.max_retries = 1;
  const ServeStats st = serve(so);
  EXPECT_EQ(st.jobs_completed, 0);
  EXPECT_EQ(st.jobs_failed, 1);
  EXPECT_EQ(st.retries, 1);
  const auto file =
      read_result_file(dir + "/failed/tseng-hopeless.result");
  ASSERT_TRUE(file.has_value());
  EXPECT_EQ(file->attempts, 2);  // first attempt + one retry
  EXPECT_TRUE(fs::is_empty(dir + "/jobs"));
}

}  // namespace
}  // namespace advbist::core
