// Synthesizer-level invariants, including the paper's headline claim as an
// executable property: the concurrent ILP never loses to the heuristics.
#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "core/synthesizer.hpp"
#include "hls/benchmarks.hpp"

namespace advbist::core {
namespace {

SynthesizerOptions quick(double seconds = 30.0) {
  SynthesizerOptions o;
  o.solver.time_limit_seconds = seconds;
  return o;
}

TEST(Synthesizer, Fig1BeatsEveryBaseline) {
  const hls::Benchmark b = hls::make_fig1();
  const Synthesizer synth(b.dfg, b.modules, quick());
  for (int k = 1; k <= b.modules.num_modules(); ++k) {
    const SynthesisResult adv = synth.synthesize_bist(k);
    ASSERT_TRUE(adv.is_optimal()) << "k=" << k;
    for (const char* method : {"ADVAN", "BITS", "RALLOC"}) {
      const auto base = baselines::run_baseline(
          method, b.dfg, b.modules, k, bist::CostModel::paper_8bit());
      EXPECT_LE(adv.design.area.total(), base.area.total())
          << method << " k=" << k;
    }
  }
}

TEST(Synthesizer, AllSessionsSweepCoversEveryK) {
  const hls::Benchmark b = hls::make_fig1();
  const auto results =
      Synthesizer(b.dfg, b.modules, quick()).synthesize_all_sessions();
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) EXPECT_GT(r.design.area.total(), 0);
}

TEST(Synthesizer, SeedingPreservesOptimum) {
  const hls::Benchmark b = hls::make_fig1();
  SynthesizerOptions with = quick();
  SynthesizerOptions without = quick();
  without.seed_with_baselines = false;
  const SynthesisResult r1 =
      Synthesizer(b.dfg, b.modules, with).synthesize_bist(2);
  const SynthesisResult r2 =
      Synthesizer(b.dfg, b.modules, without).synthesize_bist(2);
  ASSERT_TRUE(r1.is_optimal());
  ASSERT_TRUE(r2.is_optimal());
  EXPECT_EQ(r1.design.area.total(), r2.design.area.total());
}

TEST(Synthesizer, SequentialFlowNeverBeatsConcurrent) {
  // Ablation B's invariant: pinning registers to the reference-optimal
  // assignment restricts the feasible set, so the optimum can only worsen.
  const hls::Benchmark b = hls::make_fig1();
  const Synthesizer synth(b.dfg, b.modules, quick());
  const SynthesisResult concurrent = synth.synthesize_bist(2);
  const SynthesisResult ref = synth.synthesize_reference();
  ASSERT_TRUE(concurrent.is_optimal());
  ASSERT_TRUE(ref.is_optimal());

  FormulationOptions fo;
  fo.include_bist = true;
  fo.k = 2;
  fo.fix_registers = &ref.design.registers;
  const Formulation seq(b.dfg, b.modules, fo);
  ilp::Options so;
  so.time_limit_seconds = 30;
  so.branch_priority = seq.branch_priorities();
  const ilp::Solution sol = ilp::Solver(so).solve(seq.model());
  ASSERT_TRUE(sol.is_optimal());
  const DecodedDesign seq_design = seq.decode(sol);
  EXPECT_GE(seq_design.area.total(), concurrent.design.area.total());
}

TEST(Synthesizer, TightBudgetStillReturnsValidatedDesign) {
  const hls::Benchmark b = hls::make_tseng();
  SynthesizerOptions o = quick(0.3);  // far below what optimality needs
  const SynthesisResult r =
      Synthesizer(b.dfg, b.modules, o).synthesize_bist(3);
  // Either an ILP incumbent or the baseline fallback — both validated.
  EXPECT_GT(r.design.area.total(), 0);
  EXPECT_TRUE(r.hit_limit || r.is_optimal());
  EXPECT_EQ(r.design.registers.num_registers(), 5);
}

TEST(Synthesizer, BistAreaAtLeastReference) {
  const hls::Benchmark b = hls::make_fig1();
  const Synthesizer synth(b.dfg, b.modules, quick());
  const SynthesisResult ref = synth.synthesize_reference();
  for (int k = 1; k <= 2; ++k) {
    const SynthesisResult r = synth.synthesize_bist(k);
    EXPECT_GE(r.design.area.total(), ref.design.area.total()) << "k=" << k;
  }
}

TEST(Synthesizer, WidthScalingScalesArea) {
  const hls::Benchmark b = hls::make_fig1();
  SynthesizerOptions wide = quick();
  wide.cost = bist::CostModel::scaled_to_width(16);
  const SynthesisResult r8 =
      Synthesizer(b.dfg, b.modules, quick()).synthesize_reference();
  const SynthesisResult r16 =
      Synthesizer(b.dfg, b.modules, wide).synthesize_reference();
  ASSERT_TRUE(r8.is_optimal());
  ASSERT_TRUE(r16.is_optimal());
  EXPECT_EQ(r16.design.area.total(), 2 * r8.design.area.total());
}

}  // namespace
}  // namespace advbist::core
