// ADVBIST formulation invariants on the Fig. 1 example and the Fig. 2/3
// partial-datapath scenarios: model shape, reference synthesis optimality,
// BIST synthesis per k, symmetry-reduction equivalence, decoded-design
// validation.
#include <gtest/gtest.h>

#include "core/formulation.hpp"
#include "core/synthesizer.hpp"
#include "hls/benchmarks.hpp"

namespace advbist::core {
namespace {

SynthesizerOptions fast_options() {
  SynthesizerOptions o;
  o.solver.time_limit_seconds = 60.0;
  return o;
}

TEST(Formulation, Fig1ModelShape) {
  const hls::Benchmark b = hls::make_fig1();
  FormulationOptions fo;
  fo.include_bist = true;
  fo.k = 1;
  const Formulation f(b.dfg, b.modules, fo);
  EXPECT_EQ(f.num_registers(), 3);
  EXPECT_GT(f.model().num_variables(), 50);
  EXPECT_GT(f.model().num_constraints(), 50);
  EXPECT_TRUE(f.model().objective_is_integral());
  EXPECT_DOUBLE_EQ(f.objective_offset(), 3 * 208.0);
}

TEST(Formulation, RegisterBudgetBelowCrossingThrows) {
  const hls::Benchmark b = hls::make_fig1();
  FormulationOptions fo;
  fo.num_registers = 2;  // crossing is 3
  EXPECT_THROW(Formulation(b.dfg, b.modules, fo), std::invalid_argument);
}

TEST(Formulation, MoreSessionsThanModulesThrows) {
  const hls::Benchmark b = hls::make_fig1();
  FormulationOptions fo;
  fo.k = 3;  // only 2 modules
  EXPECT_THROW(Formulation(b.dfg, b.modules, fo), std::invalid_argument);
}

TEST(Fig1, ReferenceSynthesisIsOptimalAndLean) {
  const hls::Benchmark b = hls::make_fig1();
  const Synthesizer synth(b.dfg, b.modules, fast_options());
  const SynthesisResult ref = synth.synthesize_reference();
  ASSERT_TRUE(ref.is_optimal());
  EXPECT_EQ(ref.design.area.num_registers, 3);
  // 3 plain registers + minimal muxes; cost must equal the ILP objective.
  EXPECT_EQ(ref.design.area.total(), static_cast<int>(ref.objective));
  EXPECT_EQ(ref.design.area.register_transistors, 3 * 208);
  // The datapath must realize every DFG edge (validated inside decode()).
}

TEST(Fig1, BistOneSessionSynthesizes) {
  const hls::Benchmark b = hls::make_fig1();
  const Synthesizer synth(b.dfg, b.modules, fast_options());
  const SynthesisResult r = synth.synthesize_bist(1);
  ASSERT_TRUE(r.is_optimal());
  // All four test-register rules re-validated in decode(); spot-check the
  // session structure here.
  ASSERT_EQ(r.design.bist.modules.size(), 2u);
  for (const auto& plan : r.design.bist.modules) EXPECT_EQ(plan.session, 0);
  // One-session testing of both modules forces some register to act as TPG
  // and SR simultaneously somewhere or distinct SRs; area strictly above
  // reference.
  const SynthesisResult ref = synth.synthesize_reference();
  EXPECT_GT(r.design.area.total(), ref.design.area.total());
}

TEST(Fig1, TwoSessionsNeverCostMoreThanOne) {
  const hls::Benchmark b = hls::make_fig1();
  const Synthesizer synth(b.dfg, b.modules, fast_options());
  const SynthesisResult k1 = synth.synthesize_bist(1);
  const SynthesisResult k2 = synth.synthesize_bist(2);
  ASSERT_TRUE(k1.is_optimal());
  ASSERT_TRUE(k2.is_optimal());
  // With more sessions the solver may always reuse the 1-session plan
  // spread over sessions? No — each module still tested once; a 2-session
  // plan has strictly more scheduling freedom only in avoiding CBILBOs, so
  // optimal area is non-increasing in k only when sharing constraints bind.
  // The paper's Table 2 shows overhead non-increasing for k<=3; assert the
  // weaker, always-true property: both designs validate and both dominate
  // the reference.
  const SynthesisResult ref = synth.synthesize_reference();
  EXPECT_GE(k1.design.area.total(), ref.design.area.total());
  EXPECT_GE(k2.design.area.total(), ref.design.area.total());
}

TEST(Fig1, SymmetryReductionPreservesOptimum) {
  const hls::Benchmark b = hls::make_fig1();
  SynthesizerOptions with = fast_options();
  SynthesizerOptions without = fast_options();
  without.symmetry_reduction = false;
  const SynthesisResult r1 = Synthesizer(b.dfg, b.modules, with).synthesize_bist(1);
  const SynthesisResult r2 =
      Synthesizer(b.dfg, b.modules, without).synthesize_bist(1);
  ASSERT_TRUE(r1.is_optimal());
  ASSERT_TRUE(r2.is_optimal());
  EXPECT_EQ(r1.design.area.total(), r2.design.area.total());
}

TEST(Fig1, CommutativeSwapsNeverHurt) {
  const hls::Benchmark b = hls::make_fig1();
  SynthesizerOptions with = fast_options();
  SynthesizerOptions without = fast_options();
  without.commutative_swaps = false;
  const SynthesisResult r1 =
      Synthesizer(b.dfg, b.modules, with).synthesize_reference();
  const SynthesisResult r2 =
      Synthesizer(b.dfg, b.modules, without).synthesize_reference();
  ASSERT_TRUE(r1.is_optimal());
  ASSERT_TRUE(r2.is_optimal());
  EXPECT_LE(r1.design.area.total(), r2.design.area.total());
}

TEST(Fig1, ExtraRegisterNeverImprovesOptimum) {
  const hls::Benchmark b = hls::make_fig1();
  SynthesizerOptions four = fast_options();
  four.num_registers = 4;
  const SynthesisResult r3 =
      Synthesizer(b.dfg, b.modules, fast_options()).synthesize_reference();
  const SynthesisResult r4 =
      Synthesizer(b.dfg, b.modules, four).synthesize_reference();
  ASSERT_TRUE(r3.is_optimal());
  ASSERT_TRUE(r4.is_optimal());
  // A fourth register adds 208 transistors of register area; mux savings
  // cannot recoup a whole register on this tiny datapath.
  EXPECT_LT(r3.design.area.total(), r4.design.area.total());
}

// --- Fig. 2 scenario: SR assignment must respect module->register wiring ---
TEST(Fig2Scenario, SrOnlyOnConnectedRegisters) {
  const hls::Benchmark b = hls::make_fig1();
  const Synthesizer synth(b.dfg, b.modules, fast_options());
  for (int k = 1; k <= 2; ++k) {
    const SynthesisResult r = synth.synthesize_bist(k);
    ASSERT_TRUE(r.is_optimal()) << "k=" << k;
    for (std::size_t m = 0; m < r.design.bist.modules.size(); ++m) {
      const int sr = r.design.bist.modules[m].sr_reg;
      EXPECT_TRUE(r.design.datapath.reg_sources[sr].count(static_cast<int>(m)))
          << "Eq. 6 violated for module " << m;
    }
  }
}

// --- Fig. 3 scenario: TPG rules (Eqs. 9-13) on the decoded design ---
TEST(Fig3Scenario, TpgRulesHold) {
  const hls::Benchmark b = hls::make_fig1();
  const Synthesizer synth(b.dfg, b.modules, fast_options());
  const SynthesisResult r = synth.synthesize_bist(2);
  ASSERT_TRUE(r.is_optimal());
  for (std::size_t m = 0; m < r.design.bist.modules.size(); ++m) {
    const auto& plan = r.design.bist.modules[m];
    // Each port has exactly one TPG, connected, and not shared across the
    // module's ports.
    ASSERT_EQ(plan.tpg_reg.size(), 2u);
    EXPECT_NE(plan.tpg_reg[0], plan.tpg_reg[1]);
    for (int l = 0; l < 2; ++l) {
      ASSERT_GE(plan.tpg_reg[l], 0);  // fig1 has no constants
      EXPECT_TRUE(
          r.design.datapath.port_reg_sources[m][l].count(plan.tpg_reg[l]));
    }
  }
}

TEST(Tseng, ReferenceMatchesMinimalRegisters) {
  const hls::Benchmark b = hls::make_tseng();
  SynthesizerOptions o = fast_options();
  o.solver.time_limit_seconds = 120.0;
  const Synthesizer synth(b.dfg, b.modules, o);
  const SynthesisResult ref = synth.synthesize_reference();
  ASSERT_TRUE(ref.status == ilp::SolveStatus::kOptimal ||
              ref.status == ilp::SolveStatus::kFeasible);
  EXPECT_EQ(ref.design.area.num_registers, 5);
  EXPECT_EQ(ref.design.area.register_transistors, 5 * 208);
}

}  // namespace
}  // namespace advbist::core
