// White-box checks of the ILP formulation: the constraint families of
// Sections 3.1-3.4 must appear with exactly the multiplicities the paper's
// equations imply (constraints carry their equation names).
#include <gtest/gtest.h>

#include "core/formulation.hpp"
#include "hls/benchmarks.hpp"

namespace advbist::core {
namespace {

int count_rows_with_prefix(const lp::Model& m, const std::string& prefix) {
  int n = 0;
  for (int c = 0; c < m.num_constraints(); ++c)
    if (m.constraint(c).name.rfind(prefix, 0) == 0) ++n;
  return n;
}

int count_vars_with_prefix(const lp::Model& m, const std::string& prefix) {
  int n = 0;
  for (int v = 0; v < m.num_variables(); ++v)
    if (m.variable(v).name.rfind(prefix, 0) == 0) ++n;
  return n;
}

class FormulationDetail : public ::testing::Test {
 protected:
  FormulationDetail() : b_(hls::make_fig1()) {
    FormulationOptions fo;
    fo.k = 2;
    fo.symmetry_reduction = false;
    f_ = std::make_unique<Formulation>(b_.dfg, b_.modules, fo);
  }
  hls::Benchmark b_;
  std::unique_ptr<Formulation> f_;
};

TEST_F(FormulationDetail, AssignmentRowsOnePerVariable) {
  EXPECT_EQ(count_rows_with_prefix(f_->model(), "assign_v"), 8);
}

TEST_F(FormulationDetail, Eq7OneRowPerModule) {
  EXPECT_EQ(count_rows_with_prefix(f_->model(), "eq7_"), 2);
}

TEST_F(FormulationDetail, Eq8OneRowPerRegisterSession) {
  EXPECT_EQ(count_rows_with_prefix(f_->model(), "eq8_"), 3 * 2);
}

TEST_F(FormulationDetail, Eq6OneRowPerModuleRegister) {
  EXPECT_EQ(count_rows_with_prefix(f_->model(), "eq6_"), 2 * 3);
}

TEST_F(FormulationDetail, Eq9OneRowPerRegisterPort) {
  // r x m x l = 3 * 2 * 2.
  EXPECT_EQ(count_rows_with_prefix(f_->model(), "eq9_"), 12);
}

TEST_F(FormulationDetail, Eq10OneRowPerPort) {
  EXPECT_EQ(count_rows_with_prefix(f_->model(), "eq10_"), 4);
}

TEST_F(FormulationDetail, Eq11And12PerModuleSession) {
  EXPECT_EQ(count_rows_with_prefix(f_->model(), "eq11_"), 2 * 2);
  EXPECT_EQ(count_rows_with_prefix(f_->model(), "eq12_"), 2 * 2);
}

TEST_F(FormulationDetail, Eq13PerRegisterModuleSession) {
  EXPECT_EQ(count_rows_with_prefix(f_->model(), "eq13_"), 3 * 2 * 2);
}

TEST_F(FormulationDetail, Eq17PerRegister) {
  EXPECT_EQ(count_rows_with_prefix(f_->model(), "eq17_"), 3);
}

TEST_F(FormulationDetail, AdversePathRowsCoverEveryWire) {
  // Eq. 1 family: one prevention row per (r, m, l).
  EXPECT_EQ(count_rows_with_prefix(f_->model(), "eq1_"), 3 * 2 * 2);
}

TEST_F(FormulationDetail, PigeonholeCutsPresent) {
  EXPECT_EQ(count_rows_with_prefix(f_->model(), "cut_sr_pigeonhole"), 1);
  EXPECT_EQ(count_rows_with_prefix(f_->model(), "cut_tpg_pigeonhole"), 1);
}

TEST_F(FormulationDetail, VariableFamilies) {
  const lp::Model& m = f_->model();
  EXPECT_EQ(count_vars_with_prefix(m, "x_v"), 8 * 3);
  EXPECT_EQ(count_vars_with_prefix(m, "smrp_"), 2 * 3 * 2);
  EXPECT_EQ(count_vars_with_prefix(m, "t_r"), 3 * 2 * 2 * 2);
  EXPECT_EQ(count_vars_with_prefix(m, "tr_"), 3);
  EXPECT_EQ(count_vars_with_prefix(m, "trp_"), 3 * 2);
  // fig1 has no constants: no tc or u variables.
  EXPECT_EQ(count_vars_with_prefix(m, "tc_"), 0);
  EXPECT_EQ(count_vars_with_prefix(m, "u_m"), 0);
}

TEST_F(FormulationDetail, MuxSelectorsOneHotPerInput) {
  const lp::Model& m = f_->model();
  // Registers: M+1 selectors each; ports: R+consts+1 each.
  EXPECT_EQ(count_vars_with_prefix(m, "yr_"), 3 * (2 + 1));
  EXPECT_EQ(count_vars_with_prefix(m, "yml_"), 4 * (3 + 1));
}

TEST(FormulationConstants, PaulinGrowsConstantMachinery) {
  const hls::Benchmark b = hls::make_paulin();
  FormulationOptions fo;
  fo.k = 1;
  const Formulation f(b.dfg, b.modules, fo);
  // The shared constant '3' feeds both multipliers through commutative
  // ports: u indicators and tc variables must exist.
  EXPECT_GT(count_vars_with_prefix(f.model(), "u_m"), 0);
  EXPECT_GT(count_vars_with_prefix(f.model(), "tc_"), 0);
}

TEST(FormulationSymmetry, PinsMaximalClique) {
  const hls::Benchmark b = hls::make_fig1();
  FormulationOptions fo;
  fo.k = 1;
  fo.symmetry_reduction = true;
  const Formulation f(b.dfg, b.modules, fo);
  // The maximal crossing is 3; 3 variables x 3 registers get fixed bounds.
  int fixed = 0;
  for (int v = 0; v < f.model().num_variables(); ++v) {
    const auto& def = f.model().variable(v);
    if (def.name.rfind("x_v", 0) == 0 && def.lower == def.upper) ++fixed;
  }
  EXPECT_EQ(fixed, 3 * 3);
}

TEST(FormulationReference, NoBistVariablesWithoutBist) {
  const hls::Benchmark b = hls::make_fig1();
  FormulationOptions fo;
  fo.include_bist = false;
  const Formulation f(b.dfg, b.modules, fo);
  EXPECT_EQ(count_vars_with_prefix(f.model(), "smrp_"), 0);
  EXPECT_EQ(count_vars_with_prefix(f.model(), "t_r"), 0);
  EXPECT_EQ(count_rows_with_prefix(f.model(), "eq10_"), 0);
}

}  // namespace
}  // namespace advbist::core
