// Baseline heuristics: every produced design must satisfy the BIST rules
// (validated inside run_*) and exhibit the method-specific shapes the paper
// reports (RALLOC avoids CBILBOs and may add registers; ADVAN has no
// BILBOs/CBILBOs by construction; BITS concentrates duty).
#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "hls/benchmarks.hpp"

namespace advbist::baselines {
namespace {

const bist::CostModel kCost = bist::CostModel::paper_8bit();

class BaselineCircuitTest
    : public ::testing::TestWithParam<std::tuple<const char*, const char*>> {};

TEST_P(BaselineCircuitTest, ProducesValidDesignAtMaxSessions) {
  const auto [method, circuit] = GetParam();
  const hls::Benchmark b = hls::benchmark_by_name(circuit);
  const BaselineResult r =
      run_baseline(method, b.dfg, b.modules, b.modules.num_modules(), kCost);
  // run_baseline validates internally; check the reported area is coherent.
  EXPECT_GT(r.area.total(), 0);
  EXPECT_EQ(r.area.num_registers, r.registers.num_registers());
  EXPECT_GE(r.area.tpgs + r.area.bilbos + r.area.cbilbos, 1)
      << "some register must generate patterns";
  EXPECT_GE(r.area.srs + r.area.bilbos + r.area.cbilbos, 1)
      << "some register must compact signatures";
}

INSTANTIATE_TEST_SUITE_P(
    AllMethodsAllCircuits, BaselineCircuitTest,
    ::testing::Combine(::testing::Values("RALLOC", "BITS", "ADVAN"),
                       ::testing::Values("tseng", "paulin", "fir6", "iir3",
                                         "dct4", "wavelet6")),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_" +
             std::get<1>(info.param);
    });

TEST(Ralloc, AvoidsCbilbos) {
  for (const hls::Benchmark& b : hls::all_benchmarks()) {
    const BaselineResult r =
        run_ralloc(b.dfg, b.modules, b.modules.num_modules(), kCost);
    EXPECT_EQ(r.area.cbilbos, 0) << b.dfg.name();
  }
}

TEST(Ralloc, SelfAdjacencyConflictsMayAddRegisters) {
  // The paper observes RALLOC opening an extra register on fir6, iir3 and
  // wavelet6. Our reconstruction must show the same mechanism: extra
  // conflicts can only increase the register count.
  int total_extra = 0;
  for (const hls::Benchmark& b : hls::all_benchmarks()) {
    const BaselineResult r =
        run_ralloc(b.dfg, b.modules, b.modules.num_modules(), kCost);
    EXPECT_GE(r.extra_registers, 0) << b.dfg.name();
    total_extra += r.extra_registers;
  }
  EXPECT_GT(total_extra, 0) << "self-adjacency avoidance never bound";
}

TEST(Advan, MostlySeparatesTpgAndSrDuty) {
  // ADVAN separates SR registers from TPG duty (Table 3 shows B=C=0 because
  // the real ADVAN co-designs the register allocation). Our reconstruction
  // runs on a fixed left-edge allocation, so a port occasionally has no
  // register source other than its module's SR; allow at most one CBILBO
  // per circuit and require the shape to stay BILBO/CBILBO-light overall.
  int bilbos = 0, cbilbos = 0;
  for (const hls::Benchmark& b : hls::all_benchmarks()) {
    const BaselineResult r =
        run_advan(b.dfg, b.modules, b.modules.num_modules(), kCost);
    EXPECT_LE(r.area.cbilbos, 1) << b.dfg.name();
    bilbos += r.area.bilbos;
    cbilbos += r.area.cbilbos;
  }
  EXPECT_LE(cbilbos, 2);
  EXPECT_LE(bilbos + cbilbos, 6);
}

TEST(Advan, NoExtraRegisters) {
  // ADVAN (like ADVBIST) never adds registers (paper Section 4.2).
  for (const hls::Benchmark& b : hls::all_benchmarks()) {
    const BaselineResult r =
        run_advan(b.dfg, b.modules, b.modules.num_modules(), kCost);
    EXPECT_EQ(r.extra_registers, 0) << b.dfg.name();
  }
}

TEST(Bits, SharesTestRegisters) {
  // BITS maximizes sharing: the number of distinct test registers should
  // not exceed ADVAN's (which spreads duty more).
  for (const hls::Benchmark& b : hls::all_benchmarks()) {
    const int k = b.modules.num_modules();
    const BaselineResult bits = run_bits(b.dfg, b.modules, k, kCost);
    const int bits_test_regs =
        bits.area.tpgs + bits.area.srs + bits.area.bilbos + bits.area.cbilbos;
    EXPECT_GE(bits_test_regs, 1) << b.dfg.name();
    EXPECT_LE(bits_test_regs, bits.registers.num_registers());
  }
}

TEST(Baselines, UnknownMethodThrows) {
  const hls::Benchmark b = hls::make_fig1();
  EXPECT_THROW(run_baseline("MAGIC", b.dfg, b.modules, 1, kCost),
               std::invalid_argument);
}

TEST(Baselines, BadSessionCountThrows) {
  const hls::Benchmark b = hls::make_fig1();
  EXPECT_THROW(run_ralloc(b.dfg, b.modules, 0, kCost), std::invalid_argument);
  EXPECT_THROW(run_bits(b.dfg, b.modules, 5, kCost), std::invalid_argument);
}

TEST(Baselines, OneSessionAlsoFeasible) {
  // k=1 is the tightest SR-sharing regime (all modules in one session).
  for (const hls::Benchmark& b : hls::all_benchmarks()) {
    EXPECT_NO_THROW(run_bits(b.dfg, b.modules, 1, kCost)) << b.dfg.name();
    EXPECT_NO_THROW(run_advan(b.dfg, b.modules, 1, kCost)) << b.dfg.name();
  }
}

}  // namespace
}  // namespace advbist::baselines
