// LFSR/MISR substrate: maximal-length periods, lockup avoidance, signature
// sensitivity — the circuit behaviour behind the TPG/SR/BILBO/CBILBO cost
// entries of Table 1.
#include <gtest/gtest.h>

#include <set>

#include "bist/lfsr.hpp"

namespace advbist::bist {
namespace {

class LfsrWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(LfsrWidthTest, MaximalLengthPeriod) {
  const int width = GetParam();
  Lfsr lfsr(width, 0);
  // XNOR-form maximal LFSR cycles through 2^n - 1 states (all but the
  // all-ones lockup).
  EXPECT_EQ(lfsr.period(), (1ull << width) - 1);
}

TEST_P(LfsrWidthTest, VisitsEveryNonLockupState) {
  const int width = GetParam();
  if (width > 10) GTEST_SKIP() << "state sweep too large";
  Lfsr lfsr(width, 0);
  std::set<std::uint32_t> seen;
  for (std::uint64_t i = 0; i < (1ull << width) - 1; ++i)
    seen.insert(lfsr.step());
  EXPECT_EQ(seen.size(), (1ull << width) - 1);
  EXPECT_EQ(seen.count((1u << width) - 1), 0u) << "lockup state visited";
}

INSTANTIATE_TEST_SUITE_P(Widths, LfsrWidthTest,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 16),
                         [](const auto& info) {
                           return "w" + std::to_string(info.param);
                         });

TEST(Lfsr, AllOnesSeedRejected) {
  EXPECT_THROW(Lfsr(8, 0xFF), std::invalid_argument);
  EXPECT_NO_THROW(Lfsr(8, 0xFE));
}

TEST(Lfsr, BadWidthRejected) {
  EXPECT_THROW(Lfsr(1), std::invalid_argument);
  EXPECT_THROW(Lfsr(17), std::invalid_argument);
  EXPECT_THROW(primitive_taps(0), std::invalid_argument);
}

TEST(Lfsr, DeterministicSequence) {
  Lfsr a(8, 3), b(8, 3);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(a.step(), b.step());
}

TEST(Misr, FaultFreeStreamsAgree) {
  Misr a(8), b(8);
  for (std::uint32_t v : {1u, 2u, 3u, 250u, 17u}) {
    a.absorb(v);
    b.absorb(v);
  }
  EXPECT_EQ(a.signature(), b.signature());
}

TEST(Misr, SingleBitErrorChangesSignature) {
  // A single-bit difference anywhere in the stream must never alias
  // (linearity: the error syndrome is a nonzero LFSR state).
  for (int pos = 0; pos < 20; ++pos) {
    Misr good(8), bad(8);
    for (int i = 0; i < 20; ++i) {
      const std::uint32_t v = static_cast<std::uint32_t>(37 * i + 5) & 0xFF;
      good.absorb(v);
      bad.absorb(i == pos ? (v ^ 0x10) : v);
    }
    EXPECT_NE(good.signature(), bad.signature()) << "error at " << pos;
  }
}

TEST(Misr, AliasingProbabilityBound) {
  EXPECT_DOUBLE_EQ(Misr(8).aliasing_probability(), 1.0 / 256);
  EXPECT_DOUBLE_EQ(Misr(16).aliasing_probability(), 1.0 / 65536);
}

TEST(Misr, OrderSensitive) {
  Misr a(8), b(8);
  a.absorb(1);
  a.absorb(2);
  b.absorb(2);
  b.absorb(1);
  EXPECT_NE(a.signature(), b.signature());
}

}  // namespace
}  // namespace advbist::bist
