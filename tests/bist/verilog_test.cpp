// Verilog export: structural completeness of the emitted RTL for both the
// reference and BIST-enabled datapaths.
#include <gtest/gtest.h>

#include "bist/verilog.hpp"
#include "hls/benchmarks.hpp"

namespace advbist::bist {
namespace {

struct Fixture {
  hls::Benchmark b = hls::make_fig1();
  hls::RegisterAssignment regs{3, {0, 1, 2, 1, 0, 2, 1, 2}};
  hls::Datapath dp =
      build_datapath(b.dfg, b.modules, regs, hls::identity_port_map(b.dfg));
  BistAssignment assignment;

  Fixture() {
    assignment.k = 1;
    assignment.modules.resize(2);
    assignment.modules[0] = {0, 2, {0, 1}};
    assignment.modules[1] = {0, 1, {0, 2}};
    validate_bist_design(dp, assignment);
  }
};

TEST(Verilog, EmitsModuleSkeleton) {
  Fixture f;
  const std::string v =
      export_verilog(f.b.dfg, f.b.modules, f.dp, f.assignment);
  EXPECT_NE(v.find("module datapath ("), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find("input  wire clk"), std::string::npos);
  EXPECT_NE(v.find("test_session"), std::string::npos);
}

TEST(Verilog, DeclaresEveryRegisterAndUnit) {
  Fixture f;
  const std::string v =
      export_verilog(f.b.dfg, f.b.modules, f.dp, f.assignment);
  for (int r = 0; r < 3; ++r)
    EXPECT_NE(v.find("reg  [7:0] r" + std::to_string(r)), std::string::npos);
  EXPECT_NE(v.find("m0_out"), std::string::npos);
  EXPECT_NE(v.find("m1_out"), std::string::npos);
  EXPECT_NE(v.find(" + "), std::string::npos);  // adder
  EXPECT_NE(v.find(" * "), std::string::npos);  // multiplier
}

TEST(Verilog, AnnotatesTestRegisterTypes) {
  Fixture f;
  const std::string v =
      export_verilog(f.b.dfg, f.b.modules, f.dp, f.assignment);
  // From bist_design_test: R0=TPG, R1/R2=CBILBO under this assignment.
  EXPECT_NE(v.find("r0: TPG"), std::string::npos);
  EXPECT_NE(v.find("r1: CBILBO"), std::string::npos);
  EXPECT_NE(v.find("r2: CBILBO"), std::string::npos);
  EXPECT_NE(v.find("test plan:"), std::string::npos);
}

TEST(Verilog, ReferenceModeOmitsBist) {
  Fixture f;
  VerilogOptions opt;
  opt.include_bist = false;
  const std::string v =
      export_verilog(f.b.dfg, f.b.modules, f.dp, f.assignment, opt);
  EXPECT_EQ(v.find("test_mode"), std::string::npos);
  EXPECT_EQ(v.find("CBILBO"), std::string::npos);
  EXPECT_NE(v.find("module datapath ("), std::string::npos);
}

TEST(Verilog, CustomNameAndWidth) {
  Fixture f;
  VerilogOptions opt;
  opt.module_name = "my_core";
  opt.width = 12;
  const std::string v =
      export_verilog(f.b.dfg, f.b.modules, f.dp, f.assignment, opt);
  EXPECT_NE(v.find("module my_core ("), std::string::npos);
  EXPECT_NE(v.find("[11:0]"), std::string::npos);
}

TEST(Verilog, RejectsUnsupportedWidth) {
  Fixture f;
  VerilogOptions opt;
  opt.width = 64;  // no LFSR tap entry
  EXPECT_THROW(export_verilog(f.b.dfg, f.b.modules, f.dp, f.assignment, opt),
               std::invalid_argument);
}

TEST(Verilog, ConstantsBecomeLiterals) {
  const hls::Benchmark b = hls::make_paulin();
  const hls::RegisterAssignment regs = hls::left_edge_allocate(b.dfg);
  const hls::Datapath dp =
      build_datapath(b.dfg, b.modules, regs, hls::identity_port_map(b.dfg));
  BistAssignment dummy;  // reference export needs no valid plan
  VerilogOptions opt;
  opt.include_bist = false;
  const std::string v = export_verilog(b.dfg, b.modules, dp, dummy, opt);
  EXPECT_NE(v.find("8'd"), std::string::npos);
}

}  // namespace
}  // namespace advbist::bist
