// BIST design semantics: register-type derivation (Section 2.2), the
// validator's Eq. (6)-(13) rules, and area accounting.
#include <gtest/gtest.h>

#include "bist/bist_design.hpp"
#include "hls/benchmarks.hpp"

namespace advbist::bist {
namespace {

using hls::Datapath;
using hls::RegisterAssignment;

// Fig. 1 datapath under the paper's register assignment:
// R0={0,4}, R1={1,3,6}, R2={2,5,7}; M0 = adder, M1 = multiplier.
Datapath fig1_datapath() {
  const hls::Benchmark b = hls::make_fig1();
  return build_datapath(b.dfg, b.modules,
                        RegisterAssignment(3, {0, 1, 2, 1, 0, 2, 1, 2}),
                        identity_port_map(b.dfg));
}

// A valid 1-session assignment for fig1:
//  adder (M0): ports fed by {R0,R1} / {R0,R1}; output drives R0, R2.
//  mult  (M1): ports fed by {R0,R2} / {R1,R2}... (see datapath test).
BistAssignment fig1_one_session() {
  BistAssignment a;
  a.k = 1;
  a.modules.resize(2);
  a.modules[0] = {0, 2, {0, 1}};  // SR = R2; TPGs R0 (port0), R1 (port1)
  a.modules[1] = {0, 1, {0, 2}};  // SR = R1; TPGs R0, R2
  return a;
}

TEST(Validate, AcceptsConsistentOneSession) {
  EXPECT_NO_THROW(validate_bist_design(fig1_datapath(), fig1_one_session()));
}

TEST(Validate, RejectsUnconnectedSr) {
  BistAssignment a = fig1_one_session();
  a.modules[0].sr_reg = 1;  // R1 is not driven by the adder output
  EXPECT_THROW(validate_bist_design(fig1_datapath(), a),
               std::invalid_argument);
}

TEST(Validate, RejectsSharedSrInSameSession) {
  BistAssignment a = fig1_one_session();
  a.modules[0].sr_reg = 2;
  a.modules[1].sr_reg = 2;  // mult output also drives R2 -> connected, but
  EXPECT_THROW(validate_bist_design(fig1_datapath(), a),  // Eq. 8 violated
               std::invalid_argument);
}

TEST(Validate, AcceptsSharedSrAcrossSessions) {
  BistAssignment a = fig1_one_session();
  a.k = 2;
  a.modules[0] = {0, 2, {0, 1}};
  a.modules[1] = {1, 2, {0, 2}};  // same SR register, different session
  EXPECT_NO_THROW(validate_bist_design(fig1_datapath(), a));
}

TEST(Validate, RejectsUnconnectedTpg) {
  BistAssignment a = fig1_one_session();
  a.modules[0].tpg_reg = {2, 1};  // R2 does not feed adder port 0
  EXPECT_THROW(validate_bist_design(fig1_datapath(), a),
               std::invalid_argument);
}

TEST(Validate, RejectsTpgSharedBetweenPorts) {
  BistAssignment a = fig1_one_session();
  a.modules[0].tpg_reg = {0, 0};  // R0 feeds both adder ports (Eq. 13)
  EXPECT_THROW(validate_bist_design(fig1_datapath(), a),
               std::invalid_argument);
}

TEST(Validate, RejectsSessionOutOfRange) {
  BistAssignment a = fig1_one_session();
  a.modules[1].session = 1;  // k == 1
  EXPECT_THROW(validate_bist_design(fig1_datapath(), a),
               std::invalid_argument);
}

TEST(Validate, RejectsConstantTpgWithoutConstants) {
  BistAssignment a = fig1_one_session();
  a.modules[0].tpg_reg = {-1, 1};  // fig1 has no constants
  EXPECT_THROW(validate_bist_design(fig1_datapath(), a),
               std::invalid_argument);
}

TEST(RegisterTypes, TpgAndSrSameSessionIsCbilbo) {
  BistAssignment a;
  a.k = 1;
  a.modules.resize(1);
  a.modules[0] = {0, /*sr=*/0, /*tpg=*/{0, 1}};  // R0 is SR and TPG in p=0
  const auto types = a.register_types(2);
  EXPECT_EQ(types[0], TestRegisterType::kCbilbo);
  EXPECT_EQ(types[1], TestRegisterType::kTpg);
}

TEST(RegisterTypes, TpgAndSrDifferentSessionsIsBilbo) {
  BistAssignment a;
  a.k = 2;
  a.modules.resize(2);
  a.modules[0] = {0, /*sr=*/0, {1, 2}};
  a.modules[1] = {1, /*sr=*/2, {0, 1}};  // R0: SR in p0, TPG in p1
  const auto types = a.register_types(3);
  EXPECT_EQ(types[0], TestRegisterType::kBilbo);
  EXPECT_EQ(types[1], TestRegisterType::kTpg);   // TPG in both sessions
  EXPECT_EQ(types[2], TestRegisterType::kBilbo);  // TPG p0 + SR p1
}

TEST(RegisterTypes, UntouchedRegistersStayPlain) {
  BistAssignment a;
  a.k = 1;
  a.modules.resize(1);
  a.modules[0] = {0, 1, {2, 3}};
  const auto types = a.register_types(5);
  EXPECT_EQ(types[0], TestRegisterType::kRegister);
  EXPECT_EQ(types[4], TestRegisterType::kRegister);
}

TEST(Area, ReferenceCountsPlainRegistersAndMuxes) {
  const Datapath dp = fig1_datapath();
  const AreaBreakdown area =
      compute_reference_area(dp, CostModel::paper_8bit());
  EXPECT_EQ(area.num_registers, 3);
  EXPECT_EQ(area.register_transistors, 3 * 208);
  EXPECT_EQ(area.tpgs + area.srs + area.bilbos + area.cbilbos, 0);
  EXPECT_GT(area.mux_inputs, 0);
  EXPECT_EQ(area.total(),
            area.register_transistors + area.mux_transistors);
}

TEST(Area, BistAreaReflectsReconfiguration) {
  const Datapath dp = fig1_datapath();
  const CostModel cm = CostModel::paper_8bit();
  const BistAssignment a = fig1_one_session();
  const AreaBreakdown area = compute_bist_area(dp, a, cm);
  // R0 is TPG for both modules; R1 TPG (adder) + SR (mult) same session ->
  // CBILBO; R2 TPG (mult port1) + SR (adder) same session -> CBILBO.
  EXPECT_EQ(area.tpgs, 1);
  EXPECT_EQ(area.cbilbos, 2);
  EXPECT_EQ(area.register_transistors, 256 + 596 + 596);
  EXPECT_GT(area.total(), compute_reference_area(dp, cm).total());
}

TEST(Area, OverheadPercent) {
  AreaBreakdown ref, bist;
  ref.register_transistors = 1600;
  bist.register_transistors = 2152;
  EXPECT_NEAR(overhead_percent(bist, ref), 34.5, 0.1);
  EXPECT_THROW(overhead_percent(bist, AreaBreakdown{}),
               std::invalid_argument);
}

TEST(Area, ConstantTpgChargedAtTpgCost) {
  const hls::Benchmark b = hls::make_paulin();
  const Datapath dp = build_datapath(b.dfg, b.modules,
                                     hls::left_edge_allocate(b.dfg),
                                     identity_port_map(b.dfg));
  BistAssignment a;
  a.k = 1;
  a.modules.resize(4);
  // Only structural fields matter for the counting under test here.
  for (int m = 0; m < 4; ++m) {
    a.modules[m].session = 0;
    a.modules[m].sr_reg = 0;
    a.modules[m].tpg_reg.assign(2, 0);
  }
  a.modules[0].tpg_reg[1] = -1;  // dedicated constant TPG
  EXPECT_EQ(a.num_constant_tpgs(), 1);
  const AreaBreakdown area = compute_bist_area(dp, a, CostModel::paper_8bit());
  EXPECT_EQ(area.constant_tpgs, 1);
  EXPECT_EQ(area.constant_tpg_transistors, 256);
}

}  // namespace
}  // namespace advbist::bist
