// Fault-simulation substrate: stuck-at coverage of the parallel BIST
// session, including the experimental justification of Eq. 13 (a TPG
// shared between two input ports destroys coverage).
#include <gtest/gtest.h>

#include "bist/simulation.hpp"

namespace advbist::bist {
namespace {

TEST(Evaluate, BehavioralSemantics) {
  EXPECT_EQ(evaluate_module(hls::OpType::kAdd, 200, 100, 8), (300 & 0xFF));
  EXPECT_EQ(evaluate_module(hls::OpType::kSub, 5, 7, 8), ((5 - 7) & 0xFF));
  EXPECT_EQ(evaluate_module(hls::OpType::kMul, 20, 20, 8), (400 & 0xFF));
  EXPECT_EQ(evaluate_module(hls::OpType::kCompare, 3, 9, 8), 1u);
  EXPECT_EQ(evaluate_module(hls::OpType::kCompare, 9, 3, 8), 0u);
}

TEST(Faults, EnumerationCoversAllPortsBitsPolarities) {
  const auto faults = enumerate_faults(8);
  EXPECT_EQ(faults.size(), 3u * 8u * 2u);
}

class CoverageTest : public ::testing::TestWithParam<hls::OpType> {};

TEST_P(CoverageTest, DistinctTpgsReachHighCoverage) {
  SessionSimConfig cfg;
  const CoverageResult r = simulate_module_test(GetParam(), cfg);
  // Random-pattern testing of 8-bit arithmetic with a full LFSR period
  // detects essentially all port stuck-ats.
  EXPECT_GE(r.coverage_percent(), 95.0)
      << to_string(GetParam()) << ": " << r.detected << "/" << r.total_faults;
}

TEST_P(CoverageTest, SharedTpgLosesCoverage) {
  // Eq. 13's justification: identical values on both ports leave
  // equality-masked faults undetected (dramatic for subtraction/compare,
  // visible for add/mul too).
  SessionSimConfig distinct, shared;
  shared.shared_tpg = true;
  const double d =
      simulate_module_test(GetParam(), distinct).coverage_percent();
  const double s = simulate_module_test(GetParam(), shared).coverage_percent();
  EXPECT_LE(s, d);
}

INSTANTIATE_TEST_SUITE_P(AllOps, CoverageTest,
                         ::testing::Values(hls::OpType::kAdd,
                                           hls::OpType::kSub,
                                           hls::OpType::kMul),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

TEST(Coverage, SharedTpgCatastrophicForSubtraction) {
  // a - a == 0 for every pattern: the output is a constant, and a constant
  // error stream over the full 255-pattern LFSR period aliases to a zero
  // MISR syndrome (p(x) divides x^255 + 1), so ALL output stuck-ats escape;
  // only input-port faults (which break operand equality) are caught:
  // 32 of 48 faults = 66.7%.
  SessionSimConfig shared;
  shared.shared_tpg = true;
  const CoverageResult r =
      simulate_module_test(hls::OpType::kSub, shared);
  EXPECT_NEAR(r.coverage_percent(), 100.0 * 32 / 48, 0.1);
}

TEST(Coverage, MorePatternsNeverHurt) {
  SessionSimConfig few, many;
  few.patterns = 15;
  many.patterns = 255;
  const auto less = simulate_module_test(hls::OpType::kMul, few);
  const auto more = simulate_module_test(hls::OpType::kMul, many);
  EXPECT_GE(more.detected, less.detected);
}

TEST(Coverage, NarrowWidthStillWorks) {
  SessionSimConfig cfg;
  cfg.width = 4;
  cfg.patterns = 15;
  cfg.seed_b = 0x5;
  const CoverageResult r = simulate_module_test(hls::OpType::kAdd, cfg);
  EXPECT_EQ(r.total_faults, 3 * 4 * 2);
  EXPECT_GT(r.coverage_percent(), 80.0);
}

}  // namespace
}  // namespace advbist::bist
