// Cost model must reproduce the paper's Table 1 exactly — these numbers are
// the objective weights of every experiment.
#include <gtest/gtest.h>

#include "bist/cost_model.hpp"

namespace advbist::bist {
namespace {

TEST(CostModel, Table1aRegisterCosts) {
  const CostModel cm = CostModel::paper_8bit();
  EXPECT_EQ(cm.register_cost(TestRegisterType::kRegister), 208);
  EXPECT_EQ(cm.register_cost(TestRegisterType::kTpg), 256);
  EXPECT_EQ(cm.register_cost(TestRegisterType::kSr), 304);
  EXPECT_EQ(cm.register_cost(TestRegisterType::kBilbo), 388);
  EXPECT_EQ(cm.register_cost(TestRegisterType::kCbilbo), 596);
}

TEST(CostModel, Table1bMuxCosts) {
  const CostModel cm = CostModel::paper_8bit();
  EXPECT_EQ(cm.mux_cost(2), 80);
  EXPECT_EQ(cm.mux_cost(3), 176);
  EXPECT_EQ(cm.mux_cost(4), 208);
  EXPECT_EQ(cm.mux_cost(5), 300);
  EXPECT_EQ(cm.mux_cost(6), 320);
  EXPECT_EQ(cm.mux_cost(7), 350);
}

TEST(CostModel, DirectWiresAreFree) {
  const CostModel cm = CostModel::paper_8bit();
  EXPECT_EQ(cm.mux_cost(0), 0);
  EXPECT_EQ(cm.mux_cost(1), 0);
}

TEST(CostModel, WideMuxExtrapolates) {
  const CostModel cm = CostModel::paper_8bit();
  EXPECT_EQ(cm.mux_cost(8), 400);
  EXPECT_EQ(cm.mux_cost(10), 500);
  EXPECT_GT(cm.mux_cost(9), cm.mux_cost(8));
}

TEST(CostModel, NegativeFaninThrows) {
  EXPECT_THROW(CostModel::paper_8bit().mux_cost(-1), std::invalid_argument);
}

TEST(CostModel, WidthScalingLinear) {
  const CostModel cm16 = CostModel::scaled_to_width(16);
  EXPECT_EQ(cm16.register_cost(TestRegisterType::kRegister), 416);
  EXPECT_EQ(cm16.register_cost(TestRegisterType::kCbilbo), 1192);
  EXPECT_EQ(cm16.mux_cost(2), 160);
  const CostModel cm4 = CostModel::scaled_to_width(4);
  EXPECT_EQ(cm4.register_cost(TestRegisterType::kTpg), 128);
}

TEST(CostModel, InvalidWidthThrows) {
  EXPECT_THROW(CostModel::scaled_to_width(0), std::invalid_argument);
}

TEST(CostModel, ConstantTpgPenaltyDominates) {
  const CostModel cm = CostModel::paper_8bit();
  EXPECT_GT(cm.constant_tpg_penalty(),
            cm.register_cost(TestRegisterType::kCbilbo));
  EXPECT_GT(cm.constant_tpg_penalty(), cm.mux_cost(10));
  EXPECT_EQ(cm.constant_tpg_cost(), 256);
}

TEST(CostModel, TypeNames) {
  EXPECT_STREQ(to_string(TestRegisterType::kRegister), "Reg");
  EXPECT_STREQ(to_string(TestRegisterType::kCbilbo), "CBILBO");
}

// The paper's observation: reconfiguring a CBILBO costs roughly double the
// flip-flops — the cost model must preserve the ordering
// Reg < TPG < SR < BILBO < CBILBO that drives all assignment tradeoffs.
TEST(CostModel, CostOrderingDrivesTradeoffs) {
  const CostModel cm = CostModel::paper_8bit();
  EXPECT_LT(cm.register_cost(TestRegisterType::kRegister),
            cm.register_cost(TestRegisterType::kTpg));
  EXPECT_LT(cm.register_cost(TestRegisterType::kTpg),
            cm.register_cost(TestRegisterType::kSr));
  EXPECT_LT(cm.register_cost(TestRegisterType::kSr),
            cm.register_cost(TestRegisterType::kBilbo));
  EXPECT_LT(cm.register_cost(TestRegisterType::kBilbo),
            cm.register_cost(TestRegisterType::kCbilbo));
  // BILBO is cheaper than a separate TPG + SR pair upgrade:
  // (388 - 208) < (256 - 208) + (304 - 208) would be 180 < 144 — false, so
  // sharing into a BILBO is NOT automatically cheaper; the ILP must weigh
  // mux effects. Assert the raw deltas the formulation uses.
  EXPECT_EQ(cm.register_cost(TestRegisterType::kTpg) -
                cm.register_cost(TestRegisterType::kRegister),
            48);
  EXPECT_EQ(cm.register_cost(TestRegisterType::kSr) -
                cm.register_cost(TestRegisterType::kRegister),
            96);
}

}  // namespace
}  // namespace advbist::bist
