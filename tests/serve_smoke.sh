#!/usr/bin/env bash
# End-to-end crash-safety smoke for `advbist serve`:
#
#   1. submit a mixed k-sweep batch into a fresh spool,
#   2. start a serve and SIGTERM it mid-flight (drain),
#   3. assert nothing was lost (every job is either done or still pending),
#   4. restart the serve and assert every job finishes audit-verified,
#   5. re-submit one model under a new id and assert a cache hit.
#
# Usage: tests/serve_smoke.sh [path-to-advbist-binary]
set -euo pipefail

BIN="${1:-./build/advbist}"
if [[ ! -x "$BIN" ]]; then
  echo "serve_smoke: binary not found: $BIN" >&2
  exit 1
fi

SPOOL="$(mktemp -d)"
trap 'rm -rf "$SPOOL"' EXIT

echo "== submit batch =="
"$BIN" submit "$SPOOL" fig1 --k 1
"$BIN" submit "$SPOOL" fig1 --k 2
"$BIN" submit "$SPOOL" tseng --k 1
"$BIN" submit "$SPOOL" tseng --k 2 --threads 2
"$BIN" submit "$SPOOL" paulin --k 2 --threads 2
[[ $(find "$SPOOL/jobs" -name "*.job" | wc -l) -eq 5 ]]

echo "== serve, SIGTERM mid-flight =="
"$BIN" serve "$SPOOL" --time 60 --ckpt-interval 0.05 > "$SPOOL/serve1.log" &
SERVE_PID=$!
sleep 2
if kill -TERM "$SERVE_PID" 2>/dev/null; then
  echo "(sent SIGTERM)"
else
  echo "(serve already finished — drain path not exercised this run)"
fi
SERVE1_RC=0
wait "$SERVE_PID" || SERVE1_RC=$?
cat "$SPOOL/serve1.log"
[[ "$SERVE1_RC" -eq 0 ]]  # a drain is not a failure

# Crash-safety invariant: every submitted job is accounted for — completed
# with a result file, or still pending on disk for the restart. None vanished.
DONE=$(find "$SPOOL/done" -name '*.result' | wc -l)
PENDING=$(find "$SPOOL/jobs" -name '*.job' | wc -l)
echo "after drain: $DONE done, $PENDING pending"
[[ $((DONE + PENDING)) -eq 5 ]]

echo "== restarted serve finishes the batch =="
"$BIN" serve "$SPOOL" --time 60 | tee "$SPOOL/serve2.log"
[[ $(find "$SPOOL/done" -name '*.result' | wc -l) -eq 5 ]]
[[ $(find "$SPOOL/jobs" -name '*.job' | wc -l) -eq 0 ]]
for f in "$SPOOL"/done/*.result; do
  grep -q '^status=optimal$' "$f" || { echo "not optimal: $f" >&2; exit 1; }
  grep -q '^verified=1$' "$f" || { echo "not verified: $f" >&2; exit 1; }
done
# If the drain interrupted a solve, the restart must have resumed it.
if [[ $PENDING -gt 0 ]]; then
  grep -Eq 'resumed|cached' "$SPOOL/serve2.log" || {
    echo "restart neither resumed nor cache-hit the pending jobs" >&2
    exit 1
  }
fi

echo "== same model under a new id is a cache hit =="
"$BIN" submit "$SPOOL" tseng --k 2 --job tseng-k2-again
"$BIN" serve "$SPOOL" --time 60 | tee "$SPOOL/serve3.log"
grep -q 'cached' "$SPOOL/serve3.log"

echo "serve_smoke: OK"
