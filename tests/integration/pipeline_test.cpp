// Full-pipeline integration: unscheduled algorithm -> list scheduling ->
// greedy module binding -> ADVBIST synthesis -> validated BIST datapath.
// This is the path a downstream user runs on their own designs.
#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "core/synthesizer.hpp"
#include "hls/allocation.hpp"
#include "hls/scheduling.hpp"

namespace advbist {
namespace {

using hls::OpType;
using hls::ValueRef;

hls::UnscheduledDfg small_fir(int taps) {
  hls::UnscheduledDfg fir;
  fir.name = "fir" + std::to_string(taps);
  for (int i = 0; i < taps; ++i) fir.variables.push_back("x" + std::to_string(i));
  for (int i = 0; i < taps; ++i) fir.variables.push_back("p" + std::to_string(i));
  for (int i = 0; i < taps - 1; ++i)
    fir.variables.push_back("s" + std::to_string(i));
  for (int i = 0; i < taps; ++i)
    fir.constants.push_back({"c" + std::to_string(i), 0.1 * (i + 1)});
  for (int i = 0; i < taps; ++i)
    fir.operations.push_back({OpType::kMul,
                              {ValueRef::variable(i), ValueRef::constant(i)},
                              taps + i,
                              "p" + std::to_string(i)});
  // s0 = p0 + p1; s_i = s_{i-1} + p_{i+1}
  fir.operations.push_back({OpType::kAdd,
                            {ValueRef::variable(taps), ValueRef::variable(taps + 1)},
                            2 * taps, "s0"});
  for (int i = 1; i < taps - 1; ++i)
    fir.operations.push_back(
        {OpType::kAdd,
         {ValueRef::variable(2 * taps + i - 1), ValueRef::variable(taps + i + 1)},
         2 * taps + i, "s" + std::to_string(i)});
  return fir;
}

class PipelineTest : public ::testing::TestWithParam<int> {};

TEST_P(PipelineTest, ScheduleBindSynthesizeValidate) {
  const int taps = GetParam();
  const hls::UnscheduledDfg fir = small_fir(taps);
  const hls::Dfg scheduled = hls::list_schedule(
      fir, {{OpType::kMul, 1}, {OpType::kAdd, 1}});
  EXPECT_NO_THROW(scheduled.validate());
  const hls::ModuleAllocation modules = hls::bind_operations_greedy(scheduled);
  EXPECT_EQ(modules.num_modules(), 2);  // one mul, one add

  core::SynthesizerOptions o;
  o.solver.time_limit_seconds = 30;
  const core::Synthesizer synth(scheduled, modules, o);
  const core::SynthesisResult ref = synth.synthesize_reference();
  const core::SynthesisResult bist = synth.synthesize_bist(1);
  EXPECT_GE(bist.design.area.total(), ref.design.area.total());
  // Decode re-validated both designs internally (Eqs. 6-13 + area
  // reconciliation); also check the baselines run on the same pipeline.
  for (const char* method : {"ADVAN", "BITS", "RALLOC"}) {
    const auto base = baselines::run_baseline(method, scheduled, modules, 2,
                                              bist::CostModel::paper_8bit());
    EXPECT_GT(base.area.total(), 0) << method;
  }
}

INSTANTIATE_TEST_SUITE_P(TapSweep, PipelineTest, ::testing::Values(3, 4, 5),
                         [](const auto& info) {
                           return "taps" + std::to_string(info.param);
                         });

TEST(Pipeline, WiderDatapathScalesLinearly) {
  const hls::UnscheduledDfg fir = small_fir(3);
  const hls::Dfg scheduled = hls::list_schedule(
      fir, {{OpType::kMul, 1}, {OpType::kAdd, 1}});
  const hls::ModuleAllocation modules = hls::bind_operations_greedy(scheduled);
  core::SynthesizerOptions o8, o32;
  o8.solver.time_limit_seconds = 20;
  o32.solver.time_limit_seconds = 20;
  o32.cost = bist::CostModel::scaled_to_width(32);
  const auto r8 =
      core::Synthesizer(scheduled, modules, o8).synthesize_reference();
  const auto r32 =
      core::Synthesizer(scheduled, modules, o32).synthesize_reference();
  ASSERT_TRUE(r8.is_optimal());
  ASSERT_TRUE(r32.is_optimal());
  EXPECT_EQ(r32.design.area.total(), 4 * r8.design.area.total());
}

}  // namespace
}  // namespace advbist
