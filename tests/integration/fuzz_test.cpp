// Randomized end-to-end property sweep: random scheduled DFGs go through
// greedy binding, reference synthesis and 1-test-session ADVBIST synthesis.
// Formulation::decode() re-validates every design from first principles
// (register compatibility, Eqs. 6-13, ILP-objective/area reconciliation),
// so every seed that solves is a full-pipeline correctness witness.
//
// The sweep is fully seed-deterministic: every random draw derives from the
// effective seed announced via SCOPED_TRACE on failure, and the whole sweep
// can be shifted to a fresh seed range with ADVBIST_FUZZ_SEED=<base> (the
// default base is 0, i.e. seeds 1..12). To reproduce one failing case, rerun
// the named gtest case with the same ADVBIST_FUZZ_SEED.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "baselines/baselines.hpp"
#include "core/synthesizer.hpp"
#include "hls/allocation.hpp"
#include "hls/dfg.hpp"
#include "util/rng.hpp"

namespace advbist {
namespace {

/// Base offset added to every fuzz seed; overridable for fresh sweeps and
/// for replaying a differential failure from another machine's logs.
std::uint64_t fuzz_seed_base() {
  if (const char* env = std::getenv("ADVBIST_FUZZ_SEED"))
    return std::strtoull(env, nullptr, 10);
  return 0;
}

std::string seed_trace(std::uint64_t seed) {
  return "fuzz seed " + std::to_string(seed) +
         " (base ADVBIST_FUZZ_SEED=" + std::to_string(fuzz_seed_base()) +
         "; rerun this gtest case with the same env to reproduce)";
}

/// Generates a random scheduled DFG: a few primary inputs, then ops whose
/// operands are drawn from already-defined values (respecting schedule
/// feasibility), occasionally constants.
hls::Dfg random_dfg(std::uint64_t seed, int num_ops) {
  util::Rng rng(seed);
  hls::Dfg dfg("fuzz" + std::to_string(seed));
  struct Value {
    int var;
    int ready;  // earliest cycle a consumer may run
  };
  std::vector<Value> values;
  const int inputs = rng.next_int(2, std::min(4, num_ops));
  for (int i = 0; i < inputs; ++i)
    values.push_back({dfg.add_variable("in" + std::to_string(i)), 0});
  int constants = 0;
  for (int o = 0; o < num_ops; ++o) {
    const hls::OpType type = static_cast<hls::OpType>(rng.next_int(0, 2));
    // First operand: the o-th primary input while any remain unconsumed
    // (every variable must be used), then a random defined value.
    const Value a =
        o < inputs
            ? values[o]
            : values[rng.next_int(0, static_cast<int>(values.size()) - 1)];
    hls::ValueRef second;
    int ready = a.ready;
    if (rng.next_bool(0.25) && constants < 3) {
      second = hls::ValueRef::constant(
          dfg.add_constant(0.5 * ++constants, "c" + std::to_string(constants)));
    } else {
      // Avoid b == a: an operation whose two ports read the same variable
      // can never satisfy Eq. 13 (both ports wired from one register), so
      // such graphs are trivially BIST-infeasible.
      Value b = values[rng.next_int(0, static_cast<int>(values.size()) - 1)];
      for (int tries = 0; b.var == a.var && tries < 8; ++tries)
        b = values[rng.next_int(0, static_cast<int>(values.size()) - 1)];
      if (b.var == a.var) {
        second = hls::ValueRef::constant(
            dfg.add_constant(0.5 * ++constants, "c" + std::to_string(constants)));
      } else {
        second = hls::ValueRef::variable(b.var);
        ready = std::max(ready, b.ready);
      }
    }
    const int step = ready + rng.next_int(0, 1);
    const int out = dfg.add_variable("t" + std::to_string(o));
    dfg.add_operation(type, step, {hls::ValueRef::variable(a.var), second},
                      out, "");
    values.push_back({out, step + 1});
  }
  dfg.validate();
  return dfg;
}

class FuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzTest, FullPipelineValidates) {
  const std::uint64_t seed = fuzz_seed_base() + GetParam();
  SCOPED_TRACE(seed_trace(seed));
  const hls::Dfg dfg = random_dfg(seed, 5);
  const hls::ModuleAllocation modules = hls::bind_operations_greedy(dfg);

  core::SynthesizerOptions o;
  o.solver.time_limit_seconds = 20;
  const core::Synthesizer synth(dfg, modules, o);

  const core::SynthesisResult ref = synth.synthesize_reference();
  EXPECT_EQ(ref.design.registers.num_registers(), dfg.max_crossing());

  try {
    const core::SynthesisResult bist = synth.synthesize_bist(1);
    // decode() threw if anything was inconsistent; check dominance.
    EXPECT_GE(bist.design.area.total(), ref.design.area.total());
  } catch (const std::invalid_argument& e) {
    // A random graph may be genuinely untestable in one session (e.g. more
    // modules than SR-capable registers); proven infeasibility is a valid,
    // validated outcome.
    EXPECT_NE(std::string(e.what()).find("infeasible"), std::string::npos)
        << e.what();
  }

  // Left-edge allocation is optimal on interval graphs regardless.
  const auto regs = hls::left_edge_allocate(dfg);
  EXPECT_EQ(regs.num_registers(), dfg.max_crossing());
  // Heuristics may legitimately fail on untestable graphs; they must not
  // crash in any other way.
  try {
    baselines::run_bits(dfg, modules, 1, bist::CostModel::paper_8bit());
  } catch (const std::invalid_argument&) {
  }
}

TEST_P(FuzzTest, OptimalAdvbistDominatesHeuristics) {
  const std::uint64_t seed = (fuzz_seed_base() + GetParam()) * 31 + 7;
  SCOPED_TRACE(seed_trace(seed));
  const hls::Dfg dfg = random_dfg(seed, 4);
  const hls::ModuleAllocation modules = hls::bind_operations_greedy(dfg);
  core::SynthesizerOptions o;
  o.solver.time_limit_seconds = 20;
  core::SynthesisResult adv;
  try {
    adv = core::Synthesizer(dfg, modules, o).synthesize_bist(1);
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("infeasible"), std::string::npos)
        << e.what();
    GTEST_SKIP() << "graph untestable in one session (proven)";
  }
  if (!adv.is_optimal()) GTEST_SKIP() << "budget hit; dominance not provable";
  for (const char* method : {"ADVAN", "BITS", "RALLOC"}) {
    try {
      const auto base = baselines::run_baseline(
          method, dfg, modules, 1, bist::CostModel::paper_8bit());
      if (base.registers.num_registers() == adv.design.registers.num_registers())
        EXPECT_LE(adv.design.area.total(), base.area.total()) << method;
    } catch (const std::invalid_argument&) {
      // Heuristic infeasibility on a random graph is acceptable; the ILP
      // solving it anyway is itself the stronger result.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace advbist
