// Branch & bound correctness: knapsacks and assignment problems with known
// optima, infeasibility, limits, and a randomized sweep cross-checked against
// exhaustive 0/1 enumeration.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ilp/solver.hpp"
#include "lp/model.hpp"
#include "util/rng.hpp"

namespace advbist::ilp {
namespace {

using lp::LinExpr;
using lp::Model;
using lp::Sense;

// Exhaustively enumerates all 0/1 assignments (n <= 20) and returns the
// optimal objective, or +inf if infeasible.
double enumerate_binary_optimum(const Model& m) {
  const int n = m.num_variables();
  double best = lp::kInfinity;
  for (unsigned mask = 0; mask < (1u << n); ++mask) {
    std::vector<double> x(n);
    for (int v = 0; v < n; ++v) x[v] = (mask >> v) & 1u;
    if (m.max_violation(x, true) <= 1e-9)
      best = std::min(best, m.objective_value(x));
  }
  return best;
}

TEST(IlpSolver, SimpleKnapsack) {
  // max 10a + 6b + 4c s.t. a+b+c <= 2 -> {a,b}: 16.
  Model m;
  const int a = m.add_binary(-10, "a");
  const int b = m.add_binary(-6, "b");
  const int c = m.add_binary(-4, "c");
  m.add_constraint(LinExpr().add(a, 1).add(b, 1).add(c, 1), Sense::kLessEqual,
                   2);
  const Solution s = Solver().solve(m);
  ASSERT_TRUE(s.is_optimal());
  EXPECT_NEAR(s.objective, -16.0, 1e-6);
  EXPECT_EQ(s.value_as_int(a), 1);
  EXPECT_EQ(s.value_as_int(b), 1);
  EXPECT_EQ(s.value_as_int(c), 0);
}

TEST(IlpSolver, KnapsackWithFractionalLpOptimum) {
  // Classic: LP relaxation is fractional, ILP must branch.
  // max 8x1 + 11x2 + 6x3 + 4x4, weights 5,7,4,3 <= 14 -> optimum 21 ({x1,x2}
  // =19, {x2,x3,x4}=21).
  Model m;
  const int x1 = m.add_binary(-8, "x1");
  const int x2 = m.add_binary(-11, "x2");
  const int x3 = m.add_binary(-6, "x3");
  const int x4 = m.add_binary(-4, "x4");
  m.add_constraint(
      LinExpr().add(x1, 5).add(x2, 7).add(x3, 4).add(x4, 3),
      Sense::kLessEqual, 14);
  const Solution s = Solver().solve(m);
  ASSERT_TRUE(s.is_optimal());
  EXPECT_NEAR(s.objective, -21.0, 1e-6);
}

TEST(IlpSolver, AssignmentProblem) {
  // 3x3 assignment, cost matrix with known optimum 5 (1+1+3... verify by
  // enumeration inside the test).
  const double cost[3][3] = {{4, 1, 3}, {2, 0, 5}, {3, 2, 2}};
  Model m;
  int v[3][3];
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) v[i][j] = m.add_binary(cost[i][j], "");
  for (int i = 0; i < 3; ++i) {
    LinExpr row, col;
    for (int j = 0; j < 3; ++j) {
      row.add(v[i][j], 1);
      col.add(v[j][i], 1);
    }
    m.add_constraint(std::move(row), Sense::kEqual, 1);
    m.add_constraint(std::move(col), Sense::kEqual, 1);
  }
  const Solution s = Solver().solve(m);
  ASSERT_TRUE(s.is_optimal());
  EXPECT_NEAR(s.objective, enumerate_binary_optimum(m), 1e-6);
  EXPECT_NEAR(s.objective, 5.0, 1e-6);  // (0,1)+(1,0)+(2,2) = 1+2+2
}

TEST(IlpSolver, InfeasibleByPresolve) {
  Model m;
  const int x = m.add_binary(1, "x");
  m.add_constraint(LinExpr().add(x, 1), Sense::kGreaterEqual, 2);
  EXPECT_EQ(Solver().solve(m).status, SolveStatus::kInfeasible);
}

TEST(IlpSolver, InfeasibleIntegerOnlyDetectedBySearch) {
  // LP feasible (x=0.5) but no integer point: 2x = 1.
  Model m;
  const int x = m.add_binary(0, "x");
  Options opt;
  opt.use_presolve = false;  // force the search to prove it
  m.add_constraint(LinExpr().add(x, 2), Sense::kEqual, 1);
  EXPECT_EQ(Solver(opt).solve(m).status, SolveStatus::kInfeasible);
}

TEST(IlpSolver, GeneralIntegerVariables) {
  // min -x - y, 3x + 4y <= 12, x,y integer in [0,4] -> (4,0) obj -4.
  Model m;
  const int x = m.add_integer(0, 4, -1, "x");
  const int y = m.add_integer(0, 4, -1, "y");
  m.add_constraint(LinExpr().add(x, 3).add(y, 4), Sense::kLessEqual, 12);
  const Solution s = Solver().solve(m);
  ASSERT_TRUE(s.is_optimal());
  EXPECT_NEAR(s.objective, -4.0, 1e-6);
}

TEST(IlpSolver, MixedIntegerContinuous) {
  // min -y - 0.5 x ; y binary, x continuous in [0,1]; x + y <= 1.5.
  // Optimum: y=1, x=0.5 -> -1.25.
  Model m;
  const int x =
      m.add_variable(0, 1, -0.5, lp::VarType::kContinuous, "x");
  const int y = m.add_binary(-1, "y");
  m.add_constraint(LinExpr().add(x, 1).add(y, 1), Sense::kLessEqual, 1.5);
  const Solution s = Solver().solve(m);
  ASSERT_TRUE(s.is_optimal());
  EXPECT_NEAR(s.objective, -1.25, 1e-6);
  EXPECT_NEAR(s.values[x], 0.5, 1e-6);
  EXPECT_EQ(s.value_as_int(y), 1);
}

TEST(IlpSolver, NodeLimitReportsFeasibleOrNoSolution) {
  Model m;
  util::Rng rng(5);
  std::vector<int> vars;
  for (int i = 0; i < 18; ++i) vars.push_back(m.add_binary(-rng.next_int(1, 20), ""));
  LinExpr weight;
  for (int v : vars) weight.add(v, rng.next_int(1, 10));
  m.add_constraint(std::move(weight), Sense::kLessEqual, 30);
  Options opt;
  opt.node_limit = 1;
  opt.use_rounding_heuristic = false;
  const Solution s = Solver(opt).solve(m);
  EXPECT_TRUE(s.status == SolveStatus::kFeasible ||
              s.status == SolveStatus::kNoSolutionFound ||
              s.status == SolveStatus::kOptimal);
  EXPECT_TRUE(s.stats.hit_node_limit || s.is_optimal());
}

TEST(IlpSolver, GapIsZeroWhenOptimal) {
  Model m;
  const int x = m.add_binary(-1, "x");
  m.add_constraint(LinExpr().add(x, 1), Sense::kLessEqual, 1);
  const Solution s = Solver().solve(m);
  ASSERT_TRUE(s.is_optimal());
  EXPECT_DOUBLE_EQ(s.gap(), 0.0);
}

TEST(IlpSolver, BranchPriorityRespectedForCorrectness) {
  // Priorities must not change the optimum, only the search order.
  Model m;
  std::vector<int> v;
  for (int i = 0; i < 6; ++i) v.push_back(m.add_binary(-(i + 1.0), ""));
  LinExpr sum;
  for (int x : v) sum.add(x, 1);
  m.add_constraint(std::move(sum), Sense::kLessEqual, 3);
  Options opt;
  opt.branch_priority.assign(6, 0);
  opt.branch_priority[0] = 100;
  const Solution s = Solver(opt).solve(m);
  ASSERT_TRUE(s.is_optimal());
  EXPECT_NEAR(s.objective, -(6 + 5 + 4), 1e-6);
}

TEST(IlpSolver, EqualityPartitionStructure) {
  // The register-assignment pattern: each item to exactly one bucket,
  // bucket capacity 1, minimize placement cost.
  const int items = 4, buckets = 4;
  const double cost[4][4] = {
      {5, 2, 8, 7}, {9, 4, 3, 6}, {1, 8, 7, 5}, {6, 3, 9, 2}};
  Model m;
  std::vector<std::vector<int>> x(items, std::vector<int>(buckets));
  for (int i = 0; i < items; ++i)
    for (int b = 0; b < buckets; ++b) x[i][b] = m.add_binary(cost[i][b], "");
  for (int i = 0; i < items; ++i) {
    LinExpr e;
    for (int b = 0; b < buckets; ++b) e.add(x[i][b], 1);
    m.add_constraint(std::move(e), Sense::kEqual, 1);
  }
  for (int b = 0; b < buckets; ++b) {
    LinExpr e;
    for (int i = 0; i < items; ++i) e.add(x[i][b], 1);
    m.add_constraint(std::move(e), Sense::kLessEqual, 1);
  }
  const Solution s = Solver().solve(m);
  ASSERT_TRUE(s.is_optimal());
  EXPECT_NEAR(s.objective, enumerate_binary_optimum(m), 1e-6);
}

// ---------------------------------------------------------------------------
// Randomized sweep vs exhaustive enumeration
// ---------------------------------------------------------------------------

struct RandomIlpParam {
  int n;
  int rows;
  std::uint64_t seed;
};

class IlpRandomTest : public ::testing::TestWithParam<RandomIlpParam> {};

TEST_P(IlpRandomTest, MatchesExhaustiveEnumeration) {
  const RandomIlpParam p = GetParam();
  util::Rng rng(p.seed);
  Model m;
  for (int v = 0; v < p.n; ++v) m.add_binary(rng.next_int(-9, 9), "");
  for (int c = 0; c < p.rows; ++c) {
    LinExpr e;
    bool nonzero = false;
    for (int v = 0; v < p.n; ++v) {
      const int coeff = rng.next_int(-2, 3);
      if (coeff != 0) {
        e.add(v, coeff);
        nonzero = true;
      }
    }
    if (!nonzero) e.add(0, 1.0);
    const int sense = rng.next_int(0, 2);
    m.add_constraint(std::move(e),
                     sense == 0   ? Sense::kLessEqual
                     : sense == 1 ? Sense::kGreaterEqual
                                  : Sense::kEqual,
                     rng.next_int(0, 5));
  }
  const double brute = enumerate_binary_optimum(m);
  const Solution s = Solver().solve(m);
  if (!std::isfinite(brute)) {
    EXPECT_EQ(s.status, SolveStatus::kInfeasible)
        << "solver claims obj " << s.objective;
  } else {
    ASSERT_TRUE(s.is_optimal()) << to_string(s.status);
    EXPECT_NEAR(s.objective, brute, 1e-6);
    EXPECT_LE(m.max_violation(s.values, true), 1e-6);
  }
}

std::vector<RandomIlpParam> make_ilp_params() {
  std::vector<RandomIlpParam> params;
  std::uint64_t seed = 9000;
  for (int n : {4, 6, 8, 10, 12})
    for (int rows : {2, 4, 6})
      for (int rep = 0; rep < 4; ++rep) params.push_back({n, rows, seed++});
  return params;
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, IlpRandomTest,
                         ::testing::ValuesIn(make_ilp_params()));

}  // namespace
}  // namespace advbist::ilp
