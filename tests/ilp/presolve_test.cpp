#include <gtest/gtest.h>

#include "ilp/presolve.hpp"
#include "lp/model.hpp"

namespace advbist::ilp {
namespace {

using lp::LinExpr;
using lp::Model;
using lp::Sense;
using lp::VarType;

TEST(Presolve, FixesForcedBinaries) {
  // x + y <= 0 with x,y binary -> both fixed to 0.
  Model m;
  const int x = m.add_binary(1, "x");
  const int y = m.add_binary(1, "y");
  m.add_constraint(LinExpr().add(x, 1).add(y, 1), Sense::kLessEqual, 0);
  const PresolveResult r = presolve(m);
  EXPECT_FALSE(r.infeasible);
  EXPECT_EQ(m.variable(x).upper, 0.0);
  EXPECT_EQ(m.variable(y).upper, 0.0);
  EXPECT_EQ(r.variables_fixed, 2);
}

TEST(Presolve, PropagatesIndicatorChain) {
  // The ADVBIST pattern: z <= a + b, t <= z, a = 0, b = 0 -> t fixed 0.
  Model m;
  const int a = m.add_binary(0, "a");
  const int b = m.add_binary(0, "b");
  const int z = m.add_binary(0, "z");
  const int t = m.add_binary(0, "t");
  m.set_bounds(a, 0, 0);
  m.set_bounds(b, 0, 0);
  // a + b - z >= 0  (z <= a+b)
  m.add_constraint(LinExpr().add(a, 1).add(b, 1).add(z, -1),
                   Sense::kGreaterEqual, 0);
  // z - t >= 0 (t <= z)
  m.add_constraint(LinExpr().add(z, 1).add(t, -1), Sense::kGreaterEqual, 0);
  const PresolveResult r = presolve(m);
  EXPECT_FALSE(r.infeasible);
  EXPECT_EQ(m.variable(z).upper, 0.0);
  EXPECT_EQ(m.variable(t).upper, 0.0);
}

TEST(Presolve, IntegerRounding) {
  // 2x <= 5 with x integer -> x <= 2.
  Model m;
  const int x = m.add_integer(0, 10, 1, "x");
  m.add_constraint(LinExpr().add(x, 2), Sense::kLessEqual, 5);
  presolve(m);
  EXPECT_DOUBLE_EQ(m.variable(x).upper, 2.0);
}

TEST(Presolve, ContinuousNotRounded) {
  Model m;
  const int x = m.add_variable(0, 10, 1, VarType::kContinuous, "x");
  m.add_constraint(LinExpr().add(x, 2), Sense::kLessEqual, 5);
  presolve(m);
  EXPECT_DOUBLE_EQ(m.variable(x).upper, 2.5);
}

TEST(Presolve, DetectsInfeasibleRow) {
  Model m;
  const int x = m.add_binary(0, "x");
  const int y = m.add_binary(0, "y");
  m.add_constraint(LinExpr().add(x, 1).add(y, 1), Sense::kGreaterEqual, 3);
  EXPECT_TRUE(presolve(m).infeasible);
}

TEST(Presolve, DetectsRedundantRow) {
  Model m;
  const int x = m.add_binary(0, "x");
  const int y = m.add_binary(0, "y");
  m.add_constraint(LinExpr().add(x, 1).add(y, 1), Sense::kLessEqual, 5);
  const PresolveResult r = presolve(m);
  EXPECT_EQ(r.redundant_rows, 1);
  ASSERT_EQ(r.row_redundant.size(), 1u);
  EXPECT_TRUE(r.row_redundant[0]);
}

TEST(Presolve, EqualityForcesBothEnds) {
  // x + y = 2 with binaries -> both fixed to 1.
  Model m;
  const int x = m.add_binary(0, "x");
  const int y = m.add_binary(0, "y");
  m.add_constraint(LinExpr().add(x, 1).add(y, 1), Sense::kEqual, 2);
  const PresolveResult r = presolve(m);
  EXPECT_FALSE(r.infeasible);
  EXPECT_DOUBLE_EQ(m.variable(x).lower, 1.0);
  EXPECT_DOUBLE_EQ(m.variable(y).lower, 1.0);
}

TEST(Presolve, GreaterEqualForcesVariableUp) {
  // x >= 1 encoded as row; binary x fixed to 1.
  Model m;
  const int x = m.add_binary(0, "x");
  m.add_constraint(LinExpr().add(x, 1), Sense::kGreaterEqual, 1);
  presolve(m);
  EXPECT_DOUBLE_EQ(m.variable(x).lower, 1.0);
}

TEST(Presolve, CrossedImpliedBoundsInfeasible) {
  Model m;
  const int x = m.add_integer(0, 1, 0, "x");
  // 2x >= 1 and 2x <= 1: x must be 0.5, impossible for integer.
  m.add_constraint(LinExpr().add(x, 2), Sense::kGreaterEqual, 1);
  m.add_constraint(LinExpr().add(x, 2), Sense::kLessEqual, 1);
  EXPECT_TRUE(presolve(m).infeasible);
}

TEST(Presolve, LeavesFeasibleModelSolvable) {
  // Presolve must not cut off the integer optimum.
  Model m;
  const int x = m.add_integer(0, 4, -1, "x");
  const int y = m.add_integer(0, 4, -1, "y");
  m.add_constraint(LinExpr().add(x, 1).add(y, 1), Sense::kLessEqual, 5);
  presolve(m);
  // (4,1) and (1,4) remain feasible.
  EXPECT_LE(m.max_violation({4, 1}, true), 0.0 + 1e-9);
  EXPECT_GE(m.variable(x).upper, 4.0);
}

}  // namespace
}  // namespace advbist::ilp
