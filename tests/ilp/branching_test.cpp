// In-tree reliability branching: bounded dual-simplex probes at nodes whose
// branching candidate has too few pseudocost observations.
//
// The headline suite is a differential proof: probes steer node ORDER and
// prune via exact degradations, but must never change the proven optimum —
// at any thread count, on the paper's circuits and on a sweep of generated
// MILPs. The allowance suite pins the depth-decay schedule
// (reliability_probe_allowance) as a contract, and the store suite pins
// purge(): a globally fixed variable's history must vanish from the blend.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "core/formulation.hpp"
#include "hls/benchmarks.hpp"
#include "ilp/pseudocost.hpp"
#include "ilp/solver.hpp"
#include "lp/model.hpp"
#include "util/rng.hpp"

namespace advbist::ilp {
namespace {

using lp::LinExpr;
using lp::Model;
using lp::Sense;
using lp::VarType;

// Same shape as the parallel-equivalence sweep: mostly binaries, a few
// general integers and continuous helpers, so probes see both probeable
// and unprobeable candidates.
Model random_milp(std::uint64_t seed) {
  util::Rng rng(seed);
  Model m;
  const int n = rng.next_int(6, 12);
  for (int v = 0; v < n; ++v) {
    const int kind = rng.next_int(0, 5);
    if (kind <= 3)
      m.add_binary(rng.next_int(-6, 6), "");
    else if (kind == 4)
      m.add_integer(0, rng.next_int(2, 4), rng.next_int(-6, 6), "");
    else
      m.add_variable(0, 2, rng.next_int(-4, 4), VarType::kContinuous, "");
  }
  const int rows = rng.next_int(2, 5);
  for (int r = 0; r < rows; ++r) {
    LinExpr e;
    for (int v = 0; v < n; ++v) {
      const int coeff = rng.next_int(-2, 3);
      if (coeff != 0) e.add(v, coeff);
    }
    const Sense sense =
        rng.next_bool(0.8) ? Sense::kLessEqual : Sense::kGreaterEqual;
    m.add_constraint(std::move(e), sense, rng.next_int(1, 8));
  }
  return m;
}

Solution solve(const Model& m, int threads, int probe_budget,
               const Options& base = {}) {
  Options opt = base;
  opt.num_threads = threads;
  opt.time_limit_seconds = 120.0;
  opt.reliability_probe_budget = probe_budget;
  return Solver(opt).solve(m);
}

// Probes-on vs probes-off must agree on status and proven objective at
// every thread count; the probes-on run must respect the global budget.
void expect_probe_differential(const Model& m, int budget,
                               const Options& base = {}) {
  const Solution off = solve(m, 1, 0, base);
  EXPECT_EQ(off.stats.reliability_probed, 0);
  EXPECT_EQ(off.stats.reliability_fixed, 0);
  EXPECT_EQ(off.stats.reliability_tightened, 0);
  for (const int threads : {1, 2, 4}) {
    const Solution on = solve(m, threads, budget, base);
    ASSERT_EQ(on.status, off.status) << threads << " threads";
    if (off.has_solution()) {
      ASSERT_NEAR(on.objective, off.objective, 1e-6) << threads << " threads";
      EXPECT_LE(m.max_violation(on.values, true), 1e-6)
          << threads << " threads";
    }
    EXPECT_LE(on.stats.reliability_probed, static_cast<long long>(budget))
        << threads << " threads";
    EXPECT_GE(on.stats.reliability_probed, 0) << threads << " threads";
  }
}

TEST(BranchingProbes, GeneratedMilpsSameOptimumWithAndWithoutProbes) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    // A tiny reliability threshold plus a small budget makes the early
    // tree probe aggressively on these small models.
    expect_probe_differential(random_milp(seed), 32);
  }
}

TEST(BranchingProbes, Fig1SameProvenOptimumAcrossThreadCounts) {
  const hls::Benchmark bench = hls::benchmark_by_name("fig1");
  core::FormulationOptions fo;
  fo.include_bist = true;
  fo.k = 2;
  const core::Formulation f(bench.dfg, bench.modules, fo);
  Options base;
  base.branch_priority = f.branch_priorities();
  expect_probe_differential(f.model(), 64, base);
}

TEST(BranchingProbes, TsengSameProvenOptimumAcrossThreadCounts) {
  const hls::Benchmark bench = hls::benchmark_by_name("tseng");
  core::FormulationOptions fo;
  fo.include_bist = true;
  fo.k = 2;
  const core::Formulation f(bench.dfg, bench.modules, fo);
  Options base;
  base.branch_priority = f.branch_priorities();
  expect_probe_differential(f.model(), 64, base);
}

TEST(BranchingProbes, PaulinSameProvenOptimumAcrossThreadCounts) {
  // Full-determinism material (same gate as the paulin FullSolve proof):
  // the quick loop stays quick, CI's long-determinism job runs it.
  if (std::getenv("ADVBIST_FULL_DETERMINISM") == nullptr)
    GTEST_SKIP() << "set ADVBIST_FULL_DETERMINISM=1 to run the paulin "
                    "probe differential";
  const hls::Benchmark bench = hls::benchmark_by_name("paulin");
  core::FormulationOptions fo;
  fo.include_bist = true;
  fo.k = 2;
  const core::Formulation f(bench.dfg, bench.modules, fo);
  Options base;
  base.branch_priority = f.branch_priorities();
  base.time_limit_seconds = 24.0 * 3600.0;
  expect_probe_differential(f.model(), 64, base);
}

TEST(BranchingProbes, StatsAccountProbesAgainstTheGlobalBudget) {
  // tseng's tree is deep enough to exhaust a small budget; the counters
  // must never exceed it, and fixings/tightenings only happen on probes.
  const hls::Benchmark bench = hls::benchmark_by_name("tseng");
  core::FormulationOptions fo;
  fo.include_bist = true;
  fo.k = 2;
  const core::Formulation f(bench.dfg, bench.modules, fo);
  Options base;
  base.branch_priority = f.branch_priorities();

  const Solution s = solve(f.model(), 1, 8, base);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_LE(s.stats.reliability_probed, 8);
  EXPECT_GT(s.stats.reliability_probed, 0)
      << "a fresh tseng tree must find unreliable candidates to probe";
  EXPECT_GE(s.stats.reliability_fixed, 0);
  EXPECT_GE(s.stats.reliability_tightened, 0);
  // A probe is two bounded LP re-solves; the dual-solve counter must have
  // seen at least that much work.
  EXPECT_GE(s.stats.lp_dual_solves, s.stats.reliability_probed);
}

// ---------------------------------------------------------------------------
// The depth-decay allowance schedule is a contract.
// ---------------------------------------------------------------------------

TEST(ReliabilityAllowance, DecaysByHalvingEveryTwoLevels) {
  EXPECT_EQ(reliability_probe_allowance(100, 0), 16);
  EXPECT_EQ(reliability_probe_allowance(100, 1), 16);
  EXPECT_EQ(reliability_probe_allowance(100, 2), 8);
  EXPECT_EQ(reliability_probe_allowance(100, 4), 4);
  EXPECT_EQ(reliability_probe_allowance(100, 6), 2);
  EXPECT_EQ(reliability_probe_allowance(100, 8), 1);
  EXPECT_EQ(reliability_probe_allowance(100, 9), 1);
}

TEST(ReliabilityAllowance, NothingFromDepthTenOn) {
  EXPECT_EQ(reliability_probe_allowance(100, 10), 0);
  EXPECT_EQ(reliability_probe_allowance(100, 11), 0);
  EXPECT_EQ(reliability_probe_allowance(100, 1000), 0);
}

TEST(ReliabilityAllowance, CappedByTheRemainingBudget) {
  EXPECT_EQ(reliability_probe_allowance(3, 0), 3);
  EXPECT_EQ(reliability_probe_allowance(1, 3), 1);
  EXPECT_EQ(reliability_probe_allowance(0, 0), 0);
  EXPECT_EQ(reliability_probe_allowance(-5, 0), 0);
  EXPECT_EQ(reliability_probe_allowance(0, 7), 0);
}

TEST(ReliabilityAllowance, NegativeDepthBehavesLikeRoot) {
  EXPECT_EQ(reliability_probe_allowance(100, -1), 16);
}

// ---------------------------------------------------------------------------
// PseudocostStore purge: a fixed variable's history must vanish.
// ---------------------------------------------------------------------------

TEST(PseudocostStore, PurgeForgetsOneVariableAndItsBlendContribution) {
  PseudocostStore store(3);
  store.record(0, /*up=*/true, 10.0, /*weight=*/2);
  store.record(0, /*up=*/false, 6.0, /*weight=*/2);
  store.record(1, /*up=*/true, 2.0);
  ASSERT_EQ(store.count(0, true), 2);
  ASSERT_EQ(store.count(0, false), 2);

  double avg_up = 0.0, avg_down = 0.0;
  store.global_averages(avg_up, avg_down);
  // Var 0 dominates both blends before the purge.
  EXPECT_NEAR(avg_up, (10.0 + 2.0) / 2.0, 1e-12);
  EXPECT_NEAR(avg_down, 6.0, 1e-12);

  store.purge(0);
  EXPECT_EQ(store.count(0, true), 0);
  EXPECT_EQ(store.count(0, false), 0);
  store.global_averages(avg_up, avg_down);
  EXPECT_NEAR(avg_up, 2.0, 1e-12);  // only var 1's history remains
  EXPECT_NEAR(avg_down, 0.0, 1e-12);
  // With no history, the blended estimate collapses to the global average.
  EXPECT_NEAR(store.estimate(0, true, 2, avg_up), avg_up, 1e-12);

  // Untouched variables keep their history.
  EXPECT_EQ(store.count(1, true), 1);
  EXPECT_NEAR(store.estimate(1, true, 1, 0.0), 2.0, 1e-12);
}

}  // namespace
}  // namespace advbist::ilp
