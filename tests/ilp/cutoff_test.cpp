// Seeded-cutoff semantics: an initial_cutoff equal to the optimum must not
// cut the optimum off; one below it yields kNoSolutionFound (not
// kInfeasible); pruning strength shows in node counts.
#include <gtest/gtest.h>

#include "ilp/solver.hpp"
#include "lp/model.hpp"
#include "util/rng.hpp"

namespace advbist::ilp {
namespace {

using lp::LinExpr;
using lp::Model;
using lp::Sense;

Model knapsack(int n, std::uint64_t seed, double* out_optimum = nullptr) {
  util::Rng rng(seed);
  Model m;
  LinExpr w;
  for (int v = 0; v < n; ++v) {
    m.add_binary(-rng.next_int(1, 20), "");
    w.add(v, rng.next_int(1, 10));
  }
  m.add_constraint(std::move(w), Sense::kLessEqual, 2 * n);
  if (out_optimum != nullptr) *out_optimum = Solver().solve(m).objective;
  return m;
}

TEST(InitialCutoff, ExactOptimumStillFound) {
  double opt = 0;
  const Model m = knapsack(12, 3, &opt);
  Options o;
  o.initial_cutoff = opt;  // tightest valid seed
  const Solution s = Solver(o).solve(m);
  ASSERT_TRUE(s.is_optimal());
  EXPECT_NEAR(s.objective, opt, 1e-6);
}

TEST(InitialCutoff, BelowOptimumReportsNoSolutionNotInfeasible) {
  double opt = 0;
  const Model m = knapsack(10, 5, &opt);
  Options o;
  o.initial_cutoff = opt - 5;  // unreachable
  const Solution s = Solver(o).solve(m);
  EXPECT_EQ(s.status, SolveStatus::kNoSolutionFound);
}

TEST(InitialCutoff, LooseSeedPrunesNodes) {
  double opt = 0;
  const Model m = knapsack(16, 7, &opt);
  Options seeded, unseeded;
  seeded.initial_cutoff = opt + 3;
  seeded.use_rounding_heuristic = false;
  unseeded.use_rounding_heuristic = false;
  const Solution with = Solver(seeded).solve(m);
  const Solution without = Solver(unseeded).solve(m);
  ASSERT_TRUE(with.is_optimal());
  ASSERT_TRUE(without.is_optimal());
  EXPECT_NEAR(with.objective, without.objective, 1e-6);
  EXPECT_LE(with.stats.nodes, without.stats.nodes);
}

TEST(InitialCutoff, InfeasibleModelStillInfeasibleWithSeed) {
  Model m;
  const int x = m.add_binary(1, "x");
  m.add_constraint(LinExpr().add(x, 1), Sense::kGreaterEqual, 2);
  Options o;
  o.initial_cutoff = 100;
  // Presolve proves infeasibility regardless of the seed.
  EXPECT_EQ(Solver(o).solve(m).status, SolveStatus::kInfeasible);
}

class CutoffSweep : public ::testing::TestWithParam<int> {};

TEST_P(CutoffSweep, SeedNeverChangesOptimum) {
  double opt = 0;
  const Model m = knapsack(12, 100 + GetParam(), &opt);
  Options o;
  o.initial_cutoff = opt + GetParam();  // slack 0..4
  const Solution s = Solver(o).solve(m);
  ASSERT_TRUE(s.is_optimal());
  EXPECT_NEAR(s.objective, opt, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Slack, CutoffSweep, ::testing::Values(0, 1, 2, 3, 4));

}  // namespace
}  // namespace advbist::ilp
