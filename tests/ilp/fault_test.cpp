// Fault-injection and solve-lifecycle hardening tests.
//
// A deterministic FaultInjector schedule forces factorization failures, eta
// perturbations, refused node/cut allocations and spontaneous cancellations
// into real solves of the paper's fig1/tseng formulations. Under EVERY
// schedule the contract is the same:
//   * no crash (the CI fault job additionally runs this file under
//     ASan/UBSan),
//   * any returned incumbent is feasible for the ORIGINAL model and never
//     better than the clean proven optimum,
//   * kOptimal is never returned without an audit-verified certificate,
//   * the reported best_bound stays a valid lower bound.
//
// The deadline tests pin the hardened termination path: a solve given a
// short deadline returns promptly with an honest kTimeLimit status for any
// thread count, and a pre-flipped cancel flag (the SIGINT path) returns
// kCancelled.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <vector>

#include "core/formulation.hpp"
#include "hls/benchmarks.hpp"
#include "ilp/solver.hpp"
#include "lp/model.hpp"
#include "util/fault_injector.hpp"
#include "util/solve_controller.hpp"
#include "util/stopwatch.hpp"

namespace advbist::ilp {
namespace {

/// RAII guard so a test's injector never leaks into later tests.
class ScopedInjector {
 public:
  explicit ScopedInjector(util::FaultInjector* fi) {
    util::FaultInjector::install(fi);
  }
  ~ScopedInjector() { util::FaultInjector::install(nullptr); }
};

struct Instance {
  lp::Model model;
  std::vector<int> priority;
};

Instance bist_instance(const char* name) {
  const hls::Benchmark bench = hls::benchmark_by_name(name);
  core::FormulationOptions fo;
  fo.include_bist = true;
  fo.k = 2;
  const core::Formulation f(bench.dfg, bench.modules, fo);
  return Instance{f.model(), f.branch_priorities()};
}

/// The clean proven optimum of an instance (no faults, no limits): the
/// reference every faulted run is checked against.
double clean_optimum(const Instance& inst) {
  Options opt;
  opt.branch_priority = inst.priority;
  const Solution s = Solver(opt).solve(inst.model);
  EXPECT_EQ(s.status, SolveStatus::kOptimal);
  return s.objective;
}

/// The invariants every solve must satisfy regardless of injected faults.
void expect_contract(const Instance& inst, const Solution& s,
                     double optimum) {
  // Statuses must come from the honest set.
  switch (s.status) {
    case SolveStatus::kOptimal:
    case SolveStatus::kFeasible:
    case SolveStatus::kInfeasible:
    case SolveStatus::kNoSolutionFound:
    case SolveStatus::kTimeLimit:
    case SolveStatus::kCancelled:
    case SolveStatus::kMemoryLimit:
      break;
    default:
      FAIL() << "unexpected status " << to_string(s.status);
  }
  // These instances are feasible: an infeasibility claim would be a lie.
  EXPECT_NE(s.status, SolveStatus::kInfeasible);
  if (!s.values.empty()) {
    // Any incumbent handed out must satisfy the ORIGINAL model and cannot
    // beat the true optimum.
    EXPECT_LE(inst.model.max_violation(s.values, true), 1e-6);
    EXPECT_NEAR(inst.model.objective_value(s.values), s.objective,
                1e-6 * std::max(1.0, std::abs(s.objective)));
    EXPECT_GE(s.objective, optimum - 1e-6);
  }
  if (s.status == SolveStatus::kOptimal) {
    // Never kOptimal without an audit-verified certificate.
    EXPECT_TRUE(s.stats.audit_ran);
    EXPECT_TRUE(s.stats.audit_incumbent_ok);
    EXPECT_TRUE(s.stats.audit_bound_ok);
    EXPECT_FALSE(s.stats.audit_downgraded);
    EXPECT_NEAR(s.objective, optimum, 1e-6);
  }
  // The reported dual bound must stay a valid lower bound on the optimum.
  if (std::isfinite(s.stats.best_bound))
    EXPECT_LE(s.stats.best_bound, optimum + 1e-6);
}

TEST(FaultInjection, EveryScheduleKeepsTheSolveContractOnFig1) {
  const Instance inst = bist_instance("fig1");
  const double optimum = clean_optimum(inst);

  struct Schedule {
    util::FaultSite site;
    std::uint32_t period;
    double deadline;  // 0 = run to completion
  };
  const Schedule schedules[] = {
      {util::FaultSite::kFactorSingular, 3, 0.0},
      {util::FaultSite::kFactorSingular, 7, 0.0},
      {util::FaultSite::kEtaPerturb, 5, 0.0},
      // Perturbing every other eta is a torture schedule: the solver spends
      // its time re-certifying conclusions and cold-restarting genuinely
      // singular bases, so completing the proof is not the point — staying
      // honest under sustained corruption within a bounded run is.
      {util::FaultSite::kEtaPerturb, 2, 5.0},
      {util::FaultSite::kNodeAlloc, 4, 0.0},
      {util::FaultSite::kCutAlloc, 2, 0.0},
      {util::FaultSite::kCancel, 50, 0.0},
  };
  for (const Schedule& sched : schedules) {
    for (const std::uint64_t seed : {1ull, 42ull}) {
      util::FaultInjector fi(seed);
      fi.set_period(sched.site, sched.period);
      ScopedInjector guard(&fi);
      Options opt;
      opt.branch_priority = inst.priority;
      if (sched.deadline > 0.0) opt.time_limit_seconds = sched.deadline;
      const Solution s = Solver(opt).solve(inst.model);
      SCOPED_TRACE(std::string("site ") + util::to_string(sched.site) +
                   " period " + std::to_string(sched.period) + " seed " +
                   std::to_string(seed));
      expect_contract(inst, s, optimum);
      if (sched.site == util::FaultSite::kCancel && fi.fired(sched.site) > 0)
        EXPECT_TRUE(s.status == SolveStatus::kCancelled ||
                    s.status == SolveStatus::kOptimal);
    }
  }
}

TEST(FaultInjection, ForcedSingularFactorizationsClimbTheRecoveryLadder) {
  const Instance inst = bist_instance("fig1");
  const double optimum = clean_optimum(inst);
  util::FaultInjector fi(7);
  fi.set_period(util::FaultSite::kFactorSingular, 2);
  ScopedInjector guard(&fi);
  Options opt;
  opt.branch_priority = inst.priority;
  const Solution s = Solver(opt).solve(inst.model);
  expect_contract(inst, s, optimum);
  // The schedule fired (period 2 on every refactorization), so the ladder
  // must have run — and recovered without giving the proof up.
  EXPECT_GT(fi.fired(util::FaultSite::kFactorSingular), 0);
  EXPECT_GT(s.stats.lp_recovery_refactorize + s.stats.lp_recovery_tighten +
                s.stats.lp_recovery_dense + s.stats.lp_recovery_cold,
            0);
}

TEST(FaultInjection, RefusedAllocationsForfeitTheProofHonestly) {
  const Instance inst = bist_instance("fig1");
  const double optimum = clean_optimum(inst);
  util::FaultInjector fi(11);
  fi.set_period(util::FaultSite::kNodeAlloc, 2);
  ScopedInjector guard(&fi);
  Options opt;
  opt.branch_priority = inst.priority;
  const Solution s = Solver(opt).solve(inst.model);
  expect_contract(inst, s, optimum);
  if (s.stats.dropped_nodes > 0 && s.status == SolveStatus::kOptimal) {
    // Dropped subtrees forfeit tree exhaustion; optimality may then only
    // be claimed through a bound-meets-incumbent proof, which the audit
    // re-certified (expect_contract checked audit_bound_ok above).
    EXPECT_TRUE(std::isfinite(s.stats.best_bound));
  }
}

TEST(SolveLifecycle, DeadlineIsHonoredAcrossThreadCountsOnPaulin) {
  const Instance inst = bist_instance("paulin");
  const double deadline = 0.05;
  for (const int threads : {1, 2, 4}) {
    Options opt;
    opt.branch_priority = inst.priority;
    opt.num_threads = threads;
    opt.time_limit_seconds = deadline;
    util::Stopwatch watch;
    const Solution s = Solver(opt).solve(inst.model);
    const double elapsed = watch.seconds();
    SCOPED_TRACE(threads);
    // paulin cannot be solved in 50ms: the deadline must trip and be
    // reported honestly. The generous wall-clock cap absorbs sanitizer
    // and loaded-CI slowdowns; the tight 2x acceptance bound is checked
    // in the Release benchmark runs.
    EXPECT_EQ(s.status, SolveStatus::kTimeLimit);
    EXPECT_EQ(s.stats.termination, util::StopReason::kTimeLimit);
    EXPECT_LT(elapsed, 2.0);
    if (!s.values.empty())
      EXPECT_LE(inst.model.max_violation(s.values, true), 1e-6);
    // The abandoned search still reports a valid finite lower bound taken
    // over every unexplored node (satellite: no bound is discarded).
    EXPECT_TRUE(std::isfinite(s.stats.best_bound));
  }
}

TEST(SolveLifecycle, PreFlippedCancelFlagReturnsCancelled) {
  const Instance inst = bist_instance("tseng");
  std::atomic<bool> cancel{true};  // as if SIGINT arrived immediately
  Options opt;
  opt.branch_priority = inst.priority;
  opt.cancel_flag = &cancel;
  util::Stopwatch watch;
  const Solution s = Solver(opt).solve(inst.model);
  EXPECT_EQ(s.status, SolveStatus::kCancelled);
  EXPECT_EQ(s.stats.termination, util::StopReason::kCancelled);
  EXPECT_LT(watch.seconds(), 5.0);
}

TEST(SolveLifecycle, NodeLimitFoldsUnexploredBoundsIntoBestBound) {
  const Instance inst = bist_instance("fig1");
  const double optimum = clean_optimum(inst);
  Options opt;
  opt.branch_priority = inst.priority;
  opt.node_limit = 5;
  const Solution s = Solver(opt).solve(inst.model);
  EXPECT_TRUE(s.stats.hit_node_limit);
  EXPECT_EQ(s.stats.termination, util::StopReason::kNodeLimit);
  // Legacy statuses are preserved for the node budget.
  EXPECT_TRUE(s.status == SolveStatus::kFeasible ||
              s.status == SolveStatus::kNoSolutionFound ||
              s.status == SolveStatus::kOptimal);
  EXPECT_TRUE(std::isfinite(s.stats.best_bound));
  EXPECT_LE(s.stats.best_bound, optimum + 1e-6);
}

TEST(SolveLifecycle, TinyMemoryBudgetStopsWithHonestStatus) {
  const Instance inst = bist_instance("fig1");
  const double optimum = clean_optimum(inst);
  Options opt;
  opt.branch_priority = inst.priority;
  opt.memory_limit_bytes = 1;  // trips at the first accounted node
  const Solution s = Solver(opt).solve(inst.model);
  expect_contract(inst, s, optimum);
  EXPECT_EQ(s.stats.termination, util::StopReason::kMemoryLimit);
  EXPECT_TRUE(s.status == SolveStatus::kMemoryLimit ||
              s.status == SolveStatus::kOptimal)
      << to_string(s.status);
  EXPECT_GT(s.stats.peak_memory_bytes, 0u);
}

TEST(SolveLifecycle, ShortDeadlineResultIsValidForEverySeedAndThreadCount) {
  // Deadline determinism in the sense the lifecycle can promise it: the
  // interrupted result is not bitwise-identical across thread counts (the
  // race decides which nodes were explored), but every (status, bound,
  // incumbent) triple must independently satisfy the solve contract.
  const Instance inst = bist_instance("tseng");
  const double optimum = clean_optimum(inst);
  for (const int threads : {1, 2, 4}) {
    Options opt;
    opt.branch_priority = inst.priority;
    opt.num_threads = threads;
    opt.time_limit_seconds = 0.02;
    const Solution s = Solver(opt).solve(inst.model);
    SCOPED_TRACE(threads);
    expect_contract(inst, s, optimum);
    EXPECT_TRUE(s.status == SolveStatus::kTimeLimit ||
                s.status == SolveStatus::kOptimal)
        << to_string(s.status);
  }
}

TEST(SolveLifecycle, ExitAuditVerifiesTheSerialOptimaOfThePaperInstances) {
  for (const char* name : {"fig1", "tseng"}) {
    const Instance inst = bist_instance(name);
    Options opt;
    opt.branch_priority = inst.priority;
    const Solution s = Solver(opt).solve(inst.model);
    SCOPED_TRACE(name);
    ASSERT_EQ(s.status, SolveStatus::kOptimal);
    EXPECT_TRUE(s.stats.audit_ran);
    EXPECT_TRUE(s.stats.audit_incumbent_ok);
    EXPECT_TRUE(s.stats.audit_bound_ok);
    EXPECT_FALSE(s.stats.audit_downgraded);
    EXPECT_LE(s.stats.audit_max_violation, 1e-6);
    // Audit cost must be a rounding error next to the search itself.
    EXPECT_LE(s.stats.audit_seconds, 0.5);
  }
}

TEST(SolveLifecycle, DisablingTheAuditSkipsIt) {
  const Instance inst = bist_instance("fig1");
  Options opt;
  opt.branch_priority = inst.priority;
  opt.exit_audit = false;
  const Solution s = Solver(opt).solve(inst.model);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_FALSE(s.stats.audit_ran);
  EXPECT_EQ(s.stats.audit_lp_iterations, 0);
}

}  // namespace
}  // namespace advbist::ilp
