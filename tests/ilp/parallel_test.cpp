// Parallel-vs-serial branch & bound equivalence: for any thread count the
// solver must prove the same objective and the same status. Covers random
// MILPs (knapsack-like, mixed integer/continuous, infeasible) and a real
// BIST formulation from the paper pipeline, including the seeded-cutoff +
// branch-priority configuration the synthesizer uses.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/formulation.hpp"
#include "hls/benchmarks.hpp"
#include "ilp/solver.hpp"
#include "lp/model.hpp"
#include "util/rng.hpp"

namespace advbist::ilp {
namespace {

using lp::LinExpr;
using lp::Model;
using lp::Sense;
using lp::VarType;

/// A random MILP in the shape branch & bound sees from the formulation:
/// mostly binaries, a few general integers and continuous helpers.
Model random_milp(std::uint64_t seed) {
  util::Rng rng(seed);
  Model m;
  const int n = rng.next_int(6, 12);
  for (int v = 0; v < n; ++v) {
    const int kind = rng.next_int(0, 5);
    if (kind <= 3)
      m.add_binary(rng.next_int(-6, 6), "");
    else if (kind == 4)
      m.add_integer(0, rng.next_int(2, 4), rng.next_int(-6, 6), "");
    else
      m.add_variable(0, 2, rng.next_int(-4, 4), VarType::kContinuous, "");
  }
  const int rows = rng.next_int(2, 5);
  for (int r = 0; r < rows; ++r) {
    LinExpr e;
    for (int v = 0; v < n; ++v) {
      const int coeff = rng.next_int(-2, 3);
      if (coeff != 0) e.add(v, coeff);
    }
    const Sense sense =
        rng.next_bool(0.8) ? Sense::kLessEqual : Sense::kGreaterEqual;
    m.add_constraint(std::move(e), sense, rng.next_int(1, 8));
  }
  return m;
}

Solution solve_with_threads(const Model& m, int threads,
                            const Options& base = {}) {
  Options opt = base;
  opt.num_threads = threads;
  opt.time_limit_seconds = 60.0;
  return Solver(opt).solve(m);
}

TEST(ParallelSolver, RandomModelsAgreeWithSerial) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const Model m = random_milp(seed);
    const Solution serial = solve_with_threads(m, 1);
    for (int threads : {2, 4}) {
      const Solution parallel = solve_with_threads(m, threads);
      ASSERT_EQ(parallel.status, serial.status)
          << "seed " << seed << " threads " << threads;
      if (serial.has_solution()) {
        ASSERT_NEAR(parallel.objective, serial.objective, 1e-6)
            << "seed " << seed << " threads " << threads;
        // The incumbent itself must be feasible, not just its objective.
        EXPECT_LE(m.max_violation(parallel.values, true), 1e-6);
      }
    }
  }
}

TEST(ParallelSolver, InfeasibleModelsStayInfeasible) {
  Model m;
  const int x = m.add_binary(1, "x");
  const int y = m.add_binary(1, "y");
  m.add_constraint(LinExpr().add(x, 2).add(y, 2), Sense::kEqual, 3);
  Options opt;
  opt.use_presolve = false;  // force the tree search to prove it
  for (int threads : {1, 2, 4})
    EXPECT_EQ(solve_with_threads(m, threads, opt).status,
              SolveStatus::kInfeasible)
        << threads << " threads";
}

TEST(ParallelSolver, SeededCutoffAndPrioritiesMatchSerial) {
  // The synthesizer configuration: a heuristic upper bound plus branch
  // priorities. The parallel solver must reach the same proven optimum.
  const hls::Benchmark bench = hls::benchmark_by_name("fig1");
  core::FormulationOptions fo;
  fo.include_bist = true;
  fo.k = 2;
  const core::Formulation f(bench.dfg, bench.modules, fo);

  Options base;
  base.branch_priority = f.branch_priorities();
  const Solution serial = solve_with_threads(f.model(), 1, base);
  ASSERT_EQ(serial.status, SolveStatus::kOptimal);

  for (int threads : {2, 4}) {
    const Solution parallel = solve_with_threads(f.model(), threads, base);
    ASSERT_EQ(parallel.status, SolveStatus::kOptimal) << threads << " threads";
    EXPECT_NEAR(parallel.objective, serial.objective, 1e-6)
        << threads << " threads";
    EXPECT_EQ(parallel.stats.threads, threads);
  }

  // Seeding with the optimum must still find a solution at that value.
  Options seeded = base;
  seeded.initial_cutoff = serial.objective;
  for (int threads : {1, 4}) {
    const Solution s = solve_with_threads(f.model(), threads, seeded);
    ASSERT_TRUE(s.has_solution()) << threads << " threads";
    EXPECT_NEAR(s.objective, serial.objective, 1e-6) << threads << " threads";
  }
}

/// Solves the k=2 BIST formulation of `name` to completion (no node budget)
/// and asserts the identical proven optimum for threads in {1, 2, 4}.
/// Budget-limited runs legitimately diverge per thread count (different
/// exploration orders reach different incumbents at the budget, see
/// BENCH_solver.json); the proven optimum must not.
void expect_full_solve_deterministic(const std::string& name,
                                     double time_limit_seconds) {
  const hls::Benchmark bench = hls::benchmark_by_name(name);
  core::FormulationOptions fo;
  fo.include_bist = true;
  fo.k = 2;
  const core::Formulation f(bench.dfg, bench.modules, fo);

  Options opt;
  opt.branch_priority = f.branch_priorities();
  opt.node_limit = -1;  // no node budget: run to the optimality proof
  opt.time_limit_seconds = time_limit_seconds;

  double optimum = 0.0;
  for (const int threads : {1, 2, 4}) {
    opt.num_threads = threads;
    const Solution s = Solver(opt).solve(f.model());
    ASSERT_EQ(s.status, SolveStatus::kOptimal)
        << name << " with " << threads << " threads did not finish within "
        << time_limit_seconds << "s";
    ASSERT_FALSE(s.stats.hit_node_limit);
    ASSERT_EQ(s.stats.termination, util::StopReason::kNone);
    EXPECT_LE(f.model().max_violation(s.values, true), 1e-6)
        << name << " " << threads << " threads";
    if (threads == 1)
      optimum = s.objective;
    else
      EXPECT_NEAR(s.objective, optimum, 1e-6)
          << name << " " << threads << " threads";
  }
}

TEST(ParallelSolver, FullSolveFig1DeterministicAcrossThreadCounts) {
  expect_full_solve_deterministic("fig1", 60.0);
}

TEST(ParallelSolver, FullSolveTsengDeterministicAcrossThreadCounts) {
  // ~25s per thread count in a Release build; sanitizer builds exclude
  // this test (see .github/workflows/ci.yml) rather than time out on it.
  expect_full_solve_deterministic("tseng", 300.0);
}

TEST(ParallelSolver, FullSolvePaulinDeterministicAcrossThreadCounts) {
  // Pre-cuts, paulin's k=2 BIST ILP took CPU-hours to close (the paper
  // capped CPLEX at 24 CPU-hours on these formulations); cut-and-bound
  // brought that to ~97s for all three thread counts, and the dual-simplex
  // re-solves + pseudocost branching to ~17s on one core. The proof now
  // runs ALWAYS-ON in CI through the long-determinism job (nightly + every
  // push to main, see .github/workflows/ci.yml), which sets
  // ADVBIST_FULL_DETERMINISM=1. The env gate remains only so the quick
  // tier-1 loop on an undersized container cannot go red on wall clock
  // alone.
  if (std::getenv("ADVBIST_FULL_DETERMINISM") == nullptr)
    GTEST_SKIP() << "set ADVBIST_FULL_DETERMINISM=1 to run the paulin "
                    "optimality-proof determinism check (~13s for all three "
                    "thread counts on one core; always-on in the CI "
                    "long-determinism job)";
  expect_full_solve_deterministic("paulin", 24.0 * 3600.0);
}

TEST(ParallelSolver, SharedPseudocostsKeepReductionDeterministic) {
  // The pseudocost store is shared between workers through relaxed atomics:
  // concurrent readers may see different snapshots, which legitimately
  // perturbs the node exploration order — but the post-join reduction must
  // still prove the identical optimum at every thread count, with and
  // without the root strong-branching seed.
  const hls::Benchmark bench = hls::benchmark_by_name("fig1");
  core::FormulationOptions fo;
  fo.include_bist = true;
  fo.k = 2;
  const core::Formulation f(bench.dfg, bench.modules, fo);

  for (const int sb : {0, 16}) {
    Options opt;
    opt.branch_priority = f.branch_priorities();
    opt.strong_branch_vars = sb;
    double optimum = 0.0;
    for (const int threads : {1, 2, 4}) {
      const Solution s = solve_with_threads(f.model(), threads, opt);
      ASSERT_EQ(s.status, SolveStatus::kOptimal)
          << "sb=" << sb << " threads=" << threads;
      EXPECT_LE(f.model().max_violation(s.values, true), 1e-6);
      if (sb > 0)
        EXPECT_GT(s.stats.strong_branch_probed, 0)
            << "sb=" << sb << " threads=" << threads;
      else
        EXPECT_EQ(s.stats.strong_branch_probed, 0);
      if (threads == 1)
        optimum = s.objective;
      else
        EXPECT_NEAR(s.objective, optimum, 1e-6)
            << "sb=" << sb << " threads=" << threads;
    }
  }
}

TEST(ParallelSolver, PricingModesProveTheSameOptimum) {
  // Devex / steepest-edge / Dantzig dual pricing change which vertex each
  // node re-solve lands on (and therefore the tree), never the optimum.
  const hls::Benchmark bench = hls::benchmark_by_name("fig1");
  core::FormulationOptions fo;
  fo.include_bist = true;
  fo.k = 2;
  const core::Formulation f(bench.dfg, bench.modules, fo);

  double optimum = 0.0;
  bool first = true;
  for (const lp::DualPricing pricing :
       {lp::DualPricing::kDantzig, lp::DualPricing::kDevex,
        lp::DualPricing::kSteepestEdge}) {
    Options opt;
    opt.branch_priority = f.branch_priorities();
    opt.lp_dual_pricing = pricing;
    const Solution s = solve_with_threads(f.model(), 1, opt);
    ASSERT_EQ(s.status, SolveStatus::kOptimal)
        << "pricing " << static_cast<int>(pricing);
    if (first) {
      optimum = s.objective;
      first = false;
    } else {
      EXPECT_NEAR(s.objective, optimum, 1e-6)
          << "pricing " << static_cast<int>(pricing);
    }
  }
}

TEST(ParallelSolver, ProvenStatusesNeverCoincideWithLimitHits) {
  // A proven status (optimal/infeasible) must never be reported from a
  // search that was cut short, serial or parallel.
  for (std::uint64_t seed = 3; seed <= 8; ++seed) {
    const Model m = random_milp(seed);
    Options opt;
    opt.node_limit = 1;
    opt.use_rounding_heuristic = false;
    for (int threads : {1, 4}) {
      const Solution s = solve_with_threads(m, threads, opt);
      if (s.status == SolveStatus::kOptimal ||
          s.status == SolveStatus::kInfeasible) {
        // Only legitimate when the tree was genuinely exhausted in a
        // single node — i.e. no limit was hit.
        EXPECT_FALSE(s.stats.hit_node_limit)
            << "seed " << seed << " threads " << threads;
      }
    }
  }
}

}  // namespace
}  // namespace advbist::ilp
