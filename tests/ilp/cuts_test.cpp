// Cutting-plane validity and determinism.
//
// The fuzzer enumerates every integer-feasible point of small random 0/1
// models and asserts that no separated cut — from ANY registered separator
// class (clique, lifted cover, Gomory mixed-integer, lifted odd-cycle) —
// excludes any of them: the one property that keeps branch & cut exact.
// Each seed also runs an ill-conditioned variant (rows spread by powers of
// two up to 2^±9), and the whole sweep repeats with LP scaling on and off,
// since the Gomory separator reads tableau rows off the live LU factors and
// must emit identical-validity cuts in both regimes. The remaining suites
// pin the cut pool's dedup/aging contract, the simplex's incremental row
// append against a from-scratch solver, and that cuts, probing and
// reduced-cost fixing do not change the proven optimum of the paper's
// circuits at any thread count.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/formulation.hpp"
#include "hls/benchmarks.hpp"
#include "ilp/conflict_graph.hpp"
#include "ilp/cuts.hpp"
#include "ilp/presolve.hpp"
#include "ilp/solver.hpp"
#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "util/rng.hpp"

namespace advbist::ilp {
namespace {

using lp::ConstraintDef;
using lp::LinExpr;
using lp::Model;
using lp::Sense;
using lp::Term;

// `pow2_spread` multiplies each row (both sides) by a random power of two
// in [2^-9, 2^9]. The factors are exact in floating point, so the feasible
// set is bit-identical to the unspread model while the coefficient range
// spans ~6 orders of magnitude — the ill-conditioning regime the Gomory
// separator's power-of-two normalization and the LP's scaling pass exist
// for.
Model random_binary_model(std::uint64_t seed, int* out_n = nullptr,
                          bool pow2_spread = false) {
  util::Rng rng(seed);
  Model m;
  const int n = rng.next_int(5, 10);
  if (out_n != nullptr) *out_n = n;
  for (int v = 0; v < n; ++v) m.add_binary(rng.next_int(-9, 9), "");
  const int rows = rng.next_int(3, 7);
  for (int c = 0; c < rows; ++c) {
    const double scale =
        pow2_spread ? std::ldexp(1.0, rng.next_int(-9, 9)) : 1.0;
    LinExpr e;
    bool nonzero = false;
    for (int v = 0; v < n; ++v) {
      const int coeff = rng.next_int(-3, 3);
      if (coeff != 0) {
        e.add(v, coeff * scale);
        nonzero = true;
      }
    }
    if (!nonzero) e.add(0, scale);
    const int sense = rng.next_int(0, 5);
    m.add_constraint(std::move(e),
                     sense <= 2   ? Sense::kLessEqual
                     : sense <= 4 ? Sense::kGreaterEqual
                                  : Sense::kEqual,
                     rng.next_int(0, 4) * scale);
  }
  return m;
}

std::vector<std::vector<double>> enumerate_feasible(const Model& m) {
  const int n = m.num_variables();
  std::vector<std::vector<double>> points;
  for (unsigned mask = 0; mask < (1u << n); ++mask) {
    std::vector<double> x(n);
    for (int v = 0; v < n; ++v) x[v] = (mask >> v) & 1u;
    if (m.max_violation(x, true) <= 1e-9) points.push_back(std::move(x));
  }
  return points;
}

// ---------------------------------------------------------------------------
// Validity fuzzer: separated cuts never exclude an integer-feasible point.
// Separator-agnostic: every registered cut class flows through one harness,
// so adding a separator means adding a batch, not a new fuzzer.
// ---------------------------------------------------------------------------

// One separator invocation: the cuts it returned, the fractional point its
// violation claim refers to, and the class every cut must be tagged with.
struct SeparatedBatch {
  const char* separator;
  CutClass expected_class;
  std::vector<Cut> cuts;
  std::vector<double> point;
};

// Per-class production counters so a sweep that silently separated nothing
// for some class fails loudly instead of passing vacuously.
struct SeparatorCounts {
  long long clique = 0;
  long long cover = 0;
  long long gomory = 0;
  long long odd_cycle = 0;
};

// Runs every separator over `seeds` random 0/1 models (plus an
// ill-conditioned power-of-two-spread variant per seed) and checks the
// two-sided contract on each returned cut: violated at the separating
// point, satisfied by every integer-feasible point. Clique, cover and
// odd-cycle separate at uniform random fractional points; Gomory reads
// tableau rows off an optimal basis, so each trial solves the binary
// relaxation under a fresh randomized objective (with `lp_scaling` toggling
// the simplex's internal power-of-two scaling) and separates at the LP
// optimum.
void fuzz_all_separators(bool lp_scaling, std::uint64_t seeds,
                         SeparatorCounts* counts) {
  for (const bool spread : {false, true}) {
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      int n = 0;
      const Model m = random_binary_model(seed, &n, spread);
      const std::vector<std::vector<double>> feasible = enumerate_feasible(m);

      // Conflict graph from the rows plus probing implications.
      ConflictGraph graph(n);
      graph.add_from_rows(m, {});
      Model probed = m;
      const ProbingResult probe = probe_binaries(probed, {}, graph);
      graph.finalize();
      if (probe.infeasible) {
        EXPECT_TRUE(feasible.empty()) << "seed " << seed;
        continue;
      }
      // Probing fixings must keep every feasible point.
      for (const auto& pt : feasible)
        for (int v = 0; v < n; ++v) {
          EXPECT_GE(pt[v], probed.variable(v).lower - 1e-9)
              << "seed " << seed << " var " << v;
          EXPECT_LE(pt[v], probed.variable(v).upper + 1e-9)
              << "seed " << seed << " var " << v;
        }

      const std::vector<double> global_lb(n, 0.0);
      const std::vector<double> global_ub(n, 1.0);
      util::Rng rng(seed * 7919 + (spread ? 13 : 1));
      for (int trial = 0; trial < 4; ++trial) {
        std::vector<double> x(n);
        for (int v = 0; v < n; ++v) x[v] = rng.next_double();

        std::vector<SeparatedBatch> batches;
        {
          SeparatedBatch b{"clique", CutClass::kClique, {}, x};
          for (const auto& lits : graph.separate_cliques(x, 1e-4, 50))
            b.cuts.push_back(clique_cut_from_literals(lits));
          batches.push_back(std::move(b));
        }
        batches.push_back({"cover", CutClass::kCover,
                           separate_cover_cuts(m, {}, x, 1e-4, 50), x});
        batches.push_back({"odd-cycle", CutClass::kOddCycle,
                           separate_odd_cycle_cuts(graph, x, 1e-4, 50), x});
        {
          // Gomory needs an optimal basis: re-solve the relaxation under a
          // randomized objective so successive trials land on different
          // vertices (many of them fractional).
          Model lpm = m;
          for (int v = 0; v < n; ++v)
            lpm.set_objective(v, rng.next_int(-8, 8) + rng.next_double());
          lp::SimplexOptions so;
          so.scaling = lp_scaling;
          lp::SimplexSolver solver(lpm, so);
          const lp::LpResult r = solver.solve();
          if (r.status == lp::LpStatus::kOptimal)
            batches.push_back({"gomory", CutClass::kGomory,
                               separate_gomory_cuts(solver, lpm, r.x,
                                                    global_lb, global_ub,
                                                    1e-4, 50),
                               r.x});
        }

        for (const SeparatedBatch& batch : batches) {
          if (counts != nullptr) {
            const long long found = static_cast<long long>(batch.cuts.size());
            switch (batch.expected_class) {
              case CutClass::kClique: counts->clique += found; break;
              case CutClass::kCover: counts->cover += found; break;
              case CutClass::kGomory: counts->gomory += found; break;
              case CutClass::kOddCycle: counts->odd_cycle += found; break;
            }
          }
          for (const Cut& cut : batch.cuts) {
            EXPECT_EQ(static_cast<int>(cut.cut_class),
                      static_cast<int>(batch.expected_class))
                << batch.separator << " seed " << seed;
            // Each reported cut must actually be violated at its point...
            EXPECT_GT(cut.violation(batch.point), 1e-4)
                << batch.separator << " seed " << seed << " spread "
                << spread;
            // ...and satisfied by every integer-feasible point.
            for (const auto& pt : feasible)
              EXPECT_LE(cut.activity(pt), cut.rhs + 1e-6)
                  << batch.separator << " seed " << seed << " trial "
                  << trial << " spread " << spread;
          }
        }
      }
    }
  }
}

TEST(SeparatorFuzzer, AllClassesValidWithUnscaledLp) {
  SeparatorCounts counts;
  fuzz_all_separators(/*lp_scaling=*/false, /*seeds=*/120, &counts);
  // The sweep must actually exercise every class — a separator that stops
  // producing cuts would otherwise pass on an empty conjunction.
  EXPECT_GT(counts.clique, 0);
  EXPECT_GT(counts.cover, 0);
  EXPECT_GT(counts.gomory, 0);
  EXPECT_GT(counts.odd_cycle, 0);
}

TEST(SeparatorFuzzer, AllClassesValidWithScaledLp) {
  SeparatorCounts counts;
  fuzz_all_separators(/*lp_scaling=*/true, /*seeds=*/120, &counts);
  EXPECT_GT(counts.clique, 0);
  EXPECT_GT(counts.cover, 0);
  EXPECT_GT(counts.gomory, 0);
  EXPECT_GT(counts.odd_cycle, 0);
}

TEST(CutsFuzzer, SolverWithCutsMatchesExhaustiveEnumeration) {
  // End to end: the full cut-and-bound stack (probing, clique + cover cuts,
  // in-tree separation, rc fixing) must report the enumerated optimum.
  for (std::uint64_t seed = 100; seed <= 140; ++seed) {
    const Model m = random_binary_model(seed);
    const auto feasible = enumerate_feasible(m);
    double brute = lp::kInfinity;
    for (const auto& pt : feasible)
      brute = std::min(brute, m.objective_value(pt));

    Options opt;
    opt.cut_node_interval = 4;  // separate aggressively on tiny trees
    const Solution s = Solver(opt).solve(m);
    if (!std::isfinite(brute)) {
      EXPECT_EQ(s.status, SolveStatus::kInfeasible) << "seed " << seed;
    } else {
      ASSERT_TRUE(s.is_optimal()) << "seed " << seed << ": "
                                  << to_string(s.status);
      EXPECT_NEAR(s.objective, brute, 1e-6) << "seed " << seed;
      EXPECT_LE(m.max_violation(s.values, true), 1e-6) << "seed " << seed;
    }
  }
}

// ---------------------------------------------------------------------------
// Cut pool: dedup, selection, activity aging.
// ---------------------------------------------------------------------------

Cut make_cut(std::vector<Term> terms, double rhs) {
  Cut c;
  c.terms = std::move(terms);
  c.rhs = rhs;
  return c;
}

TEST(CutPoolTest, DeduplicatesStructurally) {
  CutPool pool(8);
  EXPECT_TRUE(pool.add(make_cut({{0, 1.0}, {1, 1.0}}, 1.0)));
  EXPECT_FALSE(pool.add(make_cut({{0, 1.0}, {1, 1.0}}, 1.0)));  // dup
  EXPECT_TRUE(pool.add(make_cut({{0, 1.0}, {1, 1.0}}, 2.0)));   // other rhs
  EXPECT_TRUE(pool.add(make_cut({{0, 1.0}, {2, 1.0}}, 1.0)));   // other var
  EXPECT_EQ(pool.num_pooled(), 3);
}

TEST(CutPoolTest, TakeViolatedSelectsAndMarksApplied) {
  CutPool pool(8);
  pool.add(make_cut({{0, 1.0}, {1, 1.0}}, 1.0));  // violated at (1,1)
  pool.add(make_cut({{0, 1.0}}, 1.0));            // satisfied
  const std::vector<double> x{1.0, 1.0};
  const std::vector<Cut> taken = pool.take_violated(x, 1e-4, 10);
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_EQ(taken[0].terms.size(), 2u);
  EXPECT_EQ(pool.applied().size(), 1u);
  // Applied cuts are not returned again.
  EXPECT_TRUE(pool.take_violated(x, 1e-4, 10).empty());
}

TEST(CutPoolTest, InactiveCutsAgeOut) {
  CutPool pool(8);
  pool.add(make_cut({{0, 1.0}, {1, 1.0}}, 1.0));
  const std::vector<double> x{0.0, 0.0};  // never violated
  for (int round = 0; round < 3; ++round)
    EXPECT_TRUE(pool.take_violated(x, 1e-4, 10).empty());
  EXPECT_EQ(pool.num_pooled(), 0);
  EXPECT_EQ(pool.aged_out(), 1);
}

TEST(CutPoolTest, ReseparatedCutRegainsLives) {
  CutPool pool(8);
  pool.add(make_cut({{0, 1.0}, {1, 1.0}}, 1.0));
  const std::vector<double> slack_x{0.0, 0.0};
  (void)pool.take_violated(slack_x, 1e-4, 10);  // 2 lives left
  (void)pool.take_violated(slack_x, 1e-4, 10);  // 1 life left
  pool.add(make_cut({{0, 1.0}, {1, 1.0}}, 1.0));  // re-separated: refreshed
  (void)pool.take_violated(slack_x, 1e-4, 10);
  EXPECT_EQ(pool.num_pooled(), 1);  // still alive thanks to the refresh
}

// ---------------------------------------------------------------------------
// Clique cut translation.
// ---------------------------------------------------------------------------

TEST(CliqueCut, ComplementLiteralsFoldIntoRhs) {
  // Clique {x0 = 1, x1 = 0, x2 = 0}: x0 + (1-x1) + (1-x2) <= 1, i.e.
  // x0 - x1 - x2 <= -1.
  const Cut cut = clique_cut_from_literals({ConflictGraph::lit(0, true),
                                            ConflictGraph::lit(1, false),
                                            ConflictGraph::lit(2, false)});
  ASSERT_EQ(cut.terms.size(), 3u);
  EXPECT_DOUBLE_EQ(cut.terms[0].coeff, 1.0);
  EXPECT_DOUBLE_EQ(cut.terms[1].coeff, -1.0);
  EXPECT_DOUBLE_EQ(cut.terms[2].coeff, -1.0);
  EXPECT_DOUBLE_EQ(cut.rhs, -1.0);
  // (1, 0, 0) picks all three literals: activity 1 > -1 — violated, good.
  EXPECT_GT(cut.violation({1.0, 0.0, 0.0}), 0.0);
  // (1, 1, 0) has two literals true -> must stay cut off; (0, 1, 0) only
  // one -> satisfied.
  EXPECT_GT(cut.violation({1.0, 1.0, 0.0}), 0.0);
  EXPECT_LE(cut.violation({0.0, 1.0, 0.0}), 0.0);
}

// ---------------------------------------------------------------------------
// Incremental row append on the simplex.
// ---------------------------------------------------------------------------

TEST(SimplexAddRows, MatchesFreshSolverAcrossAppendBatches) {
  for (std::uint64_t seed = 200; seed <= 215; ++seed) {
    util::Rng rng(seed);
    Model m;
    const int n = rng.next_int(4, 8);
    for (int v = 0; v < n; ++v)
      m.add_variable(0.0, rng.next_int(1, 3), rng.next_int(-5, 5),
                     lp::VarType::kContinuous, "");
    for (int c = 0; c < 3; ++c) {
      LinExpr e;
      for (int v = 0; v < n; ++v) e.add(v, rng.next_int(-2, 3));
      m.add_constraint(std::move(e), Sense::kLessEqual, rng.next_int(2, 6));
    }

    lp::SimplexSolver incremental(m);
    ASSERT_EQ(incremental.solve().status, lp::LpStatus::kOptimal);

    // Three append batches, re-solving (warm) after each; a from-scratch
    // solver over the accumulated model is the reference.
    for (int batch = 0; batch < 3; ++batch) {
      std::vector<ConstraintDef> rows;
      for (int r = 0; r < 2; ++r) {
        LinExpr e;
        for (int v = 0; v < n; ++v) e.add(v, rng.next_int(-2, 3));
        e.normalize();
        const Sense sense =
            rng.next_bool(0.7) ? Sense::kLessEqual : Sense::kGreaterEqual;
        const double rhs = rng.next_int(-1, 5);
        rows.push_back(ConstraintDef{e.terms(), sense, rhs, ""});
        LinExpr copy = e;
        m.add_constraint(std::move(copy), sense, rhs);
      }
      incremental.add_rows(rows);
      const lp::LpResult warm = incremental.solve();
      lp::SimplexSolver fresh(m);
      const lp::LpResult ref = fresh.solve();
      ASSERT_EQ(warm.status, ref.status) << "seed " << seed << " batch "
                                         << batch;
      if (ref.status == lp::LpStatus::kOptimal)
        EXPECT_NEAR(warm.objective, ref.objective, 1e-6)
            << "seed " << seed << " batch " << batch;
    }
  }
}

TEST(SimplexAddRows, BoundChangesBetweenAppendsKeepWarmStartExact) {
  // The branch & bound usage pattern: tighten bounds, re-solve, append cut
  // rows, re-solve — the warm-started objective must track a fresh solve.
  util::Rng rng(42);
  Model m;
  const int n = 6;
  for (int v = 0; v < n; ++v)
    m.add_variable(0.0, 1.0, rng.next_int(-5, 5), lp::VarType::kContinuous,
                   "");
  for (int c = 0; c < 3; ++c) {
    LinExpr e;
    for (int v = 0; v < n; ++v) e.add(v, rng.next_int(0, 3));
    m.add_constraint(std::move(e), Sense::kLessEqual, 4);
  }
  lp::SimplexSolver solver(m);
  ASSERT_EQ(solver.solve().status, lp::LpStatus::kOptimal);

  for (int step = 0; step < 6; ++step) {
    const int v = rng.next_int(0, n - 1);
    const double fixed = rng.next_bool() ? 1.0 : 0.0;
    solver.set_variable_bounds(v, fixed, fixed);
    m.set_bounds(v, fixed, fixed);
    if (step % 2 == 0) {
      LinExpr e;
      for (int w = 0; w < n; ++w) e.add(w, rng.next_int(0, 2));
      e.normalize();
      const double rhs = rng.next_int(2, 5);
      solver.add_rows({ConstraintDef{e.terms(), Sense::kLessEqual, rhs, ""}});
      LinExpr copy = e;
      m.add_constraint(std::move(copy), Sense::kLessEqual, rhs);
    }
    const lp::LpResult warm = solver.solve();
    lp::SimplexSolver fresh(m);
    const lp::LpResult ref = fresh.solve();
    ASSERT_EQ(warm.status, ref.status) << "step " << step;
    if (ref.status == lp::LpStatus::kOptimal)
      EXPECT_NEAR(warm.objective, ref.objective, 1e-6) << "step " << step;
  }
  EXPECT_EQ(solver.num_added_rows(), 3);
}

// ---------------------------------------------------------------------------
// Determinism: cuts must not change the proven optimum, at any thread
// count, with cuts on or off.
// ---------------------------------------------------------------------------

Options cut_determinism_options(const core::Formulation& f, bool cuts) {
  Options opt;
  opt.branch_priority = f.branch_priorities();
  opt.node_limit = -1;
  opt.time_limit_seconds = 300.0;
  if (!cuts) {
    opt.use_clique_cuts = false;
    opt.use_cover_cuts = false;
    opt.use_probing = false;
    opt.use_rc_fixing = false;
    opt.gomory_rounds = 0;
    opt.odd_cycle_cuts = false;
    opt.reliability_probe_budget = 0;
    opt.cut_rounds = 0;
    opt.cut_node_interval = 0;
  }
  return opt;
}

TEST(CutsDeterminism, Fig1SameOptimumWithAndWithoutCutsAcrossThreads) {
  const hls::Benchmark bench = hls::benchmark_by_name("fig1");
  core::FormulationOptions fo;
  fo.include_bist = true;
  fo.k = 2;
  const core::Formulation f(bench.dfg, bench.modules, fo);

  double optimum = 0.0;
  bool first = true;
  for (const bool cuts : {true, false}) {
    Options opt = cut_determinism_options(f, cuts);
    for (const int threads : {1, 2, 4}) {
      opt.num_threads = threads;
      const Solution s = Solver(opt).solve(f.model());
      ASSERT_EQ(s.status, SolveStatus::kOptimal)
          << "cuts=" << cuts << " threads=" << threads;
      EXPECT_LE(f.model().max_violation(s.values, true), 1e-6);
      if (first) {
        optimum = s.objective;
        first = false;
      } else {
        EXPECT_NEAR(s.objective, optimum, 1e-6)
            << "cuts=" << cuts << " threads=" << threads;
      }
    }
  }
}

TEST(CutsDeterminism, TsengProvenOptimumUnchangedByCuts) {
  // Release-job material (the cuts-off proof takes ~25s serial); the ASan
  // job excludes it alongside the FullSolve determinism tests.
  const hls::Benchmark bench = hls::benchmark_by_name("tseng");
  core::FormulationOptions fo;
  fo.include_bist = true;
  fo.k = 2;
  const core::Formulation f(bench.dfg, bench.modules, fo);

  Options with_cuts = cut_determinism_options(f, true);
  double optimum = 0.0;
  for (const int threads : {1, 2, 4}) {
    with_cuts.num_threads = threads;
    const Solution s = Solver(with_cuts).solve(f.model());
    ASSERT_EQ(s.status, SolveStatus::kOptimal) << threads << " threads";
    if (threads == 1)
      optimum = s.objective;
    else
      EXPECT_NEAR(s.objective, optimum, 1e-6) << threads << " threads";
  }
  const Options without = cut_determinism_options(f, false);
  const Solution ref = Solver(without).solve(f.model());
  ASSERT_EQ(ref.status, SolveStatus::kOptimal);
  EXPECT_NEAR(ref.objective, optimum, 1e-6)
      << "cuts changed tseng's proven optimum";
}

}  // namespace
}  // namespace advbist::ilp
