// Crash-safe checkpoint/resume tests.
//
// The contract under test: interrupt a proof at ANY point, resume from the
// snapshot, and the continued solve reaches the same audit-verified optimum
// as an uninterrupted run — across thread counts. And for any snapshot the
// solver cannot prove valid (truncated, bit-flipped, torn mid-write, or
// from a different model), the resume degrades to a counted cold start:
// never a crash, never a wrong proof.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/formulation.hpp"
#include "hls/benchmarks.hpp"
#include "ilp/checkpoint.hpp"
#include "ilp/solver.hpp"
#include "lp/model.hpp"
#include "util/fault_injector.hpp"

namespace advbist::ilp {
namespace {

class ScopedInjector {
 public:
  explicit ScopedInjector(util::FaultInjector* fi) {
    util::FaultInjector::install(fi);
  }
  ~ScopedInjector() { util::FaultInjector::install(nullptr); }
};

struct Instance {
  lp::Model model;
  std::vector<int> priority;
};

Instance bist_instance(const char* name, int k = 2) {
  const hls::Benchmark bench = hls::benchmark_by_name(name);
  core::FormulationOptions fo;
  fo.include_bist = true;
  fo.k = k;
  const core::Formulation f(bench.dfg, bench.modules, fo);
  return Instance{f.model(), f.branch_priorities()};
}

std::string temp_path(const char* stem) {
  return testing::TempDir() + stem;
}

std::vector<unsigned char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
}

void write_file(const std::string& path,
                const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

TEST(CheckpointResume, InterruptAnywhereResumesToTheSameProvenOptimum) {
  const Instance inst = bist_instance("tseng");

  Options clean;
  clean.branch_priority = inst.priority;
  const Solution ref = Solver(clean).solve(inst.model);
  ASSERT_EQ(ref.status, SolveStatus::kOptimal);
  ASSERT_GT(ref.stats.nodes, 4);

  for (const int percent : {25, 50, 75}) {
    const std::string path =
        temp_path(("resume_" + std::to_string(percent) + ".ck").c_str());
    std::remove(path.c_str());

    Options stop;
    stop.branch_priority = inst.priority;
    stop.node_limit = std::max(1LL, ref.stats.nodes * percent / 100);
    stop.checkpoint_path = path;
    const Solution cut = Solver(stop).solve(inst.model);
    SCOPED_TRACE("interrupt at " + std::to_string(percent) + "%");
    if (cut.status == SolveStatus::kOptimal) continue;  // finished early
    ASSERT_EQ(cut.stats.termination, util::StopReason::kNodeLimit);
    EXPECT_GE(cut.stats.checkpoints_written, 1);

    for (const int threads : {1, 2, 4}) {
      Options go;
      go.branch_priority = inst.priority;
      go.num_threads = threads;
      go.resume_path = path;
      const Solution s = Solver(go).solve(inst.model);
      SCOPED_TRACE("resume on " + std::to_string(threads) + " threads");
      EXPECT_TRUE(s.stats.resumed);
      EXPECT_EQ(s.stats.resume_rejected, 0);
      ASSERT_EQ(s.status, SolveStatus::kOptimal);
      EXPECT_NEAR(s.objective, ref.objective, 1e-6);
      EXPECT_TRUE(s.stats.audit_incumbent_ok);
      EXPECT_TRUE(s.stats.audit_bound_ok);
      EXPECT_NEAR(s.stats.best_bound, ref.stats.best_bound, 1e-6);
    }
    std::remove(path.c_str());
  }
}

TEST(CheckpointResume, PeriodicSnapshotsFromALiveSearchResumeCorrectly) {
  const Instance inst = bist_instance("tseng");
  Options clean;
  clean.branch_priority = inst.priority;
  const Solution ref = Solver(clean).solve(inst.model);
  ASSERT_EQ(ref.status, SolveStatus::kOptimal);

  const std::string path = temp_path("periodic.ck");
  std::remove(path.c_str());
  Options stop;
  stop.branch_priority = inst.priority;
  stop.num_threads = 2;
  stop.time_limit_seconds = 0.4;
  stop.checkpoint_path = path;
  stop.checkpoint_interval_seconds = 0.02;  // force mid-search captures
  const Solution cut = Solver(stop).solve(inst.model);
  if (cut.status == SolveStatus::kOptimal) {
    GTEST_SKIP() << "instance solved before the deadline on this machine";
  }
  EXPECT_GE(cut.stats.checkpoints_written, 1);

  Options go;
  go.branch_priority = inst.priority;
  go.resume_path = path;
  const Solution s = Solver(go).solve(inst.model);
  EXPECT_TRUE(s.stats.resumed);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, ref.objective, 1e-6);
  EXPECT_TRUE(s.stats.audit_incumbent_ok);
  std::remove(path.c_str());
}

TEST(CheckpointResume, NaturalCompletionRemovesTheSnapshot) {
  const Instance inst = bist_instance("fig1");
  const std::string path = temp_path("completed.ck");
  // Pre-plant a stale file: completing the proof must remove it.
  write_file(path, {1, 2, 3});
  Options opt;
  opt.branch_priority = inst.priority;
  opt.checkpoint_path = path;
  const Solution s = Solver(opt).solve(inst.model);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_EQ(s.stats.checkpoints_written, 0);
  std::ifstream in(path);
  EXPECT_FALSE(in.good()) << "stale snapshot survived a completed proof";
}

TEST(CheckpointResume, SnapshotRoundTripPreservesEveryField) {
  SolveCheckpoint ck;
  ck.model_fingerprint = 0x1234abcd5678ef00ULL;
  ck.num_variables = 3;
  ck.has_incumbent = true;
  ck.incumbent_objective = 7.0;
  ck.incumbent = {1.0, 0.0, 1.0};
  ck.cutoff = 7.0;
  ck.dropped_bound = 5.5;
  ck.nodes_explored = 42;
  ck.global_lb = {0.0, 0.0, 1.0};
  ck.global_ub = {1.0, 0.0, 1.0};
  CheckpointNode node;
  node.changes = {{0, 1.0, 1.0}, {2, 0.0, 0.0}};
  node.parent_bound = 6.25;
  node.depth = 2;
  node.branch_var = 2;
  node.branch_up = false;
  node.branch_dist = 0.75;
  node.parent_obj = 6.0;
  ck.frontier.push_back(node);
  CheckpointCut cut;
  cut.terms = {{0, 1.0}, {1, -1.0}};
  cut.rhs = 1.0;
  cut.cut_class = 1;
  ck.cuts.push_back(cut);
  ck.pseudocosts.push_back(CheckpointPseudocost{1, 2.5, 0.5, 3, 1});

  const std::vector<unsigned char> bytes = serialize(ck);
  const auto back = deserialize(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->model_fingerprint, ck.model_fingerprint);
  EXPECT_EQ(back->num_variables, 3);
  EXPECT_TRUE(back->has_incumbent);
  EXPECT_EQ(back->incumbent, ck.incumbent);
  EXPECT_EQ(back->cutoff, 7.0);
  EXPECT_EQ(back->dropped_bound, 5.5);
  EXPECT_EQ(back->nodes_explored, 42);
  EXPECT_EQ(back->global_lb, ck.global_lb);
  EXPECT_EQ(back->global_ub, ck.global_ub);
  ASSERT_EQ(back->frontier.size(), 1u);
  EXPECT_EQ(back->frontier[0].changes.size(), 2u);
  EXPECT_EQ(back->frontier[0].changes[1].var, 2);
  EXPECT_EQ(back->frontier[0].parent_bound, 6.25);
  EXPECT_EQ(back->frontier[0].depth, 2);
  EXPECT_FALSE(back->frontier[0].branch_up);
  ASSERT_EQ(back->cuts.size(), 1u);
  EXPECT_EQ(back->cuts[0].terms.size(), 2u);
  EXPECT_EQ(back->cuts[0].rhs, 1.0);
  EXPECT_EQ(back->cuts[0].cut_class, 1);
  ASSERT_EQ(back->pseudocosts.size(), 1u);
  EXPECT_EQ(back->pseudocosts[0].up_cnt, 3);
}

TEST(CheckpointResume, TruncatedAndBitFlippedSnapshotsAreRejectedNotTrusted) {
  const Instance inst = bist_instance("fig1");
  const std::string path = temp_path("fuzz.ck");
  std::remove(path.c_str());
  Options stop;
  stop.branch_priority = inst.priority;
  stop.node_limit = 3;
  stop.checkpoint_path = path;
  const Solution cut = Solver(stop).solve(inst.model);
  ASSERT_EQ(cut.stats.termination, util::StopReason::kNodeLimit);
  const std::vector<unsigned char> good = read_file(path);
  ASSERT_GT(good.size(), 40u);
  ASSERT_TRUE(load_checkpoint(path).has_value());

  const std::string evil = temp_path("fuzz_evil.ck");
  // Truncations at every interesting boundary must fail the frame check.
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{1}, std::size_t{31}, std::size_t{32},
        good.size() / 2, good.size() - 1}) {
    write_file(evil, std::vector<unsigned char>(good.begin(),
                                                good.begin() + len));
    EXPECT_FALSE(load_checkpoint(evil).has_value()) << "length " << len;
  }
  // A single flipped bit anywhere must fail the checksum (or the magic).
  for (std::size_t i = 0; i < good.size(); i += 7) {
    std::vector<unsigned char> bad = good;
    bad[i] ^= 0x20;
    write_file(evil, bad);
    EXPECT_FALSE(load_checkpoint(evil).has_value()) << "flip at " << i;
  }
  // End-to-end: resuming from a corrupt file is a counted cold start that
  // still proves the true optimum.
  {
    std::vector<unsigned char> bad = good;
    bad[good.size() / 2] ^= 0xff;
    write_file(evil, bad);
    Options go;
    go.branch_priority = inst.priority;
    go.resume_path = evil;
    const Solution s = Solver(go).solve(inst.model);
    EXPECT_FALSE(s.stats.resumed);
    EXPECT_EQ(s.stats.resume_rejected, 1);
    EXPECT_EQ(s.status, SolveStatus::kOptimal);
  }
  std::remove(path.c_str());
  std::remove(evil.c_str());
}

TEST(CheckpointResume, SnapshotFromADifferentModelIsRejected) {
  const Instance fig1 = bist_instance("fig1");
  const Instance tseng = bist_instance("tseng");
  const std::string path = temp_path("mismatch.ck");
  std::remove(path.c_str());
  Options stop;
  stop.branch_priority = fig1.priority;
  stop.node_limit = 3;
  stop.checkpoint_path = path;
  (void)Solver(stop).solve(fig1.model);
  ASSERT_TRUE(load_checkpoint(path).has_value());

  Options go;
  go.branch_priority = tseng.priority;
  go.resume_path = path;
  const Solution s = Solver(go).solve(tseng.model);
  EXPECT_FALSE(s.stats.resumed);
  EXPECT_EQ(s.stats.resume_rejected, 1);
  EXPECT_EQ(s.status, SolveStatus::kOptimal);
  std::remove(path.c_str());
}

TEST(CheckpointResume, TornSnapshotWritesNeverProduceALoadableLie) {
  const Instance inst = bist_instance("fig1");
  const std::string path = temp_path("torn.ck");
  std::remove(path.c_str());
  util::FaultInjector fi(3);
  fi.set_period(util::FaultSite::kSnapshotTorn, 1);  // tear every write
  ScopedInjector guard(&fi);
  Options stop;
  stop.branch_priority = inst.priority;
  stop.node_limit = 3;
  stop.checkpoint_path = path;
  const Solution cut = Solver(stop).solve(inst.model);
  ASSERT_EQ(cut.stats.termination, util::StopReason::kNodeLimit);
  EXPECT_GT(fi.fired(util::FaultSite::kSnapshotTorn), 0);
  // The torn file must be rejected at load, and a resume over it must cold
  // start to the true optimum.
  EXPECT_FALSE(load_checkpoint(path).has_value());
  util::FaultInjector::install(nullptr);
  Options go;
  go.branch_priority = inst.priority;
  go.resume_path = path;
  const Solution s = Solver(go).solve(inst.model);
  EXPECT_FALSE(s.stats.resumed);
  EXPECT_EQ(s.stats.resume_rejected, 1);
  EXPECT_EQ(s.status, SolveStatus::kOptimal);
  std::remove(path.c_str());
}

TEST(CheckpointResume, MemoryAccountingBalancesToZeroAtTeardown) {
  const Instance inst = bist_instance("tseng");
  // Completed, interrupted, multi-threaded, and cut-aging solves must all
  // release every reserved byte: the reserve/release ledger pins to zero.
  struct Config {
    int threads;
    long long node_limit;
    int row_age;
  };
  const Config configs[] = {{1, 0, 40}, {2, 0, 40}, {4, 0, 4}, {1, 10, 40}};
  for (const Config& c : configs) {
    Options opt;
    opt.branch_priority = inst.priority;
    opt.num_threads = c.threads;
    opt.node_limit = c.node_limit;
    opt.lp_row_age_limit = c.row_age;
    const Solution s = Solver(opt).solve(inst.model);
    SCOPED_TRACE("threads " + std::to_string(c.threads) + " node_limit " +
                 std::to_string(c.node_limit) + " row_age " +
                 std::to_string(c.row_age));
    EXPECT_EQ(s.stats.memory_unreleased_bytes, 0u);
    EXPECT_GT(s.stats.peak_memory_bytes, 0u);
  }
}

TEST(CheckpointResume, ResumingANodeLimitedRunAccumulatesProgress) {
  // Chained restarts: a tiny node budget per attempt, each resuming the
  // previous checkpoint, must eventually finish the proof — monotone
  // progress is what makes serve's retry loop converge.
  const Instance inst = bist_instance("fig1");
  Options clean;
  clean.branch_priority = inst.priority;
  const Solution ref = Solver(clean).solve(inst.model);
  ASSERT_EQ(ref.status, SolveStatus::kOptimal);

  const std::string path = temp_path("chained.ck");
  std::remove(path.c_str());
  Solution s;
  int attempts = 0;
  for (; attempts < 200; ++attempts) {
    Options go;
    go.branch_priority = inst.priority;
    go.node_limit = std::max(1LL, ref.stats.nodes / 10);
    go.checkpoint_path = path;
    go.resume_path = path;
    s = Solver(go).solve(inst.model);
    if (s.stats.termination == util::StopReason::kNone) break;
  }
  ASSERT_EQ(s.status, SolveStatus::kOptimal) << attempts << " attempts";
  EXPECT_NEAR(s.objective, ref.objective, 1e-6);
  EXPECT_TRUE(s.stats.audit_incumbent_ok);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace advbist::ilp
